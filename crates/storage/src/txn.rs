//! Transaction contexts and the transaction manager.
//!
//! The transaction manager assigns transaction ids, tracks transaction
//! state, and keeps the per-transaction logical undo list used to roll back
//! aborted transactions. Locking policy (centralized 2PL vs. DORA's local
//! lock tables) is decided by the caller of the [`crate::db::Database`]
//! operations, not here.
//!
//! # The striped slot table
//!
//! The old `Mutex<HashMap<TxnId, TxnMeta>>` was a global critical section
//! crossed on every begin/commit/abort **and on every validated-read
//! stamp check** — the hottest read-side path in the system. It is
//! replaced by a power-of-two array of slots, `slot = txn & mask`:
//!
//! * **State is an `AtomicU8`** per slot. [`TxnManager::state`] (and with
//!   it `Database::stamp_stable`) is a lock-free load — validated reads
//!   take **zero locks**.
//! * **Generation tags**: a slot's `owner` word holds the (monotonically
//!   increasing, never reused) transaction id occupying it. A finished
//!   transaction's slot is recycled by the next id that maps to it; a
//!   reader holding a stale stamp sees `owner != stamp` and correctly
//!   reports the transaction as unknown (= long finished) instead of
//!   aliasing the new occupant's state. Because ids never repeat, an
//!   owner word can never return to an old value (no ABA).
//! * **Striped undo**: each slot carries its own small mutex guarding the
//!   undo list. It is touched only by the owning transaction's
//!   begin/write/commit/abort — uncontended across transactions, and a
//!   pure stripe: no other slot, and no reader, ever takes it.
//!
//! Slot lifecycle (`state` byte):
//!
//! ```text
//!  FREE ──claim──▶ CLAIMED ──begin──▶ ACTIVE ──┬─▶ COMMITTING ─▶ COMMITTED
//!  (or COMMITTED/ABORTED: reclaim)             └─▶ UNDOING ────▶ ABORTED
//! ```
//!
//! `COMMITTING`/`UNDOING` exist so cleanup (extracting the undo list,
//! applying undo) finishes before the slot becomes reclaimable: a stamp
//! check during an abort's undo must still see `Aborted` (unstable), and
//! a slot must never be recycled out from under an in-flight rollback.
//! More concurrently active transactions than slots simply back-pressure
//! `begin` (counted in `begin_waits`); the default table holds 1024.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::types::{Key, Lsn, TableId, TxnId, Value};

/// Default slot count (power of two): far above any realistic number of
/// concurrently active transactions, small enough that the checkpoint
/// scan over all slots stays trivial.
const DEFAULT_SLOTS: usize = 1024;

// Slot state bytes — see the module lifecycle diagram.
const STATE_FREE: u8 = 0;
const STATE_CLAIMED: u8 = 1;
const STATE_ACTIVE: u8 = 2;
const STATE_COMMITTING: u8 = 3;
const STATE_COMMITTED: u8 = 4;
const STATE_UNDOING: u8 = 5;
const STATE_ABORTED: u8 = 6;

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// The transaction is running.
    Active,
    /// The transaction committed.
    Committed,
    /// The transaction aborted (by request, deadlock, or failure). While
    /// this state is reported the abort's undo may still be rewriting
    /// records.
    Aborted,
}

/// A single logical undo entry. Undo is applied in reverse order of the
/// original operations.
#[derive(Debug, Clone, PartialEq)]
pub enum UndoEntry {
    /// Undo of an insert: delete the row again.
    Insert {
        /// Table of the inserted row.
        table: TableId,
        /// Primary key of the inserted row.
        key: Key,
    },
    /// Undo of an update: restore the before image.
    Update {
        /// Table of the updated row.
        table: TableId,
        /// Primary key of the updated row.
        key: Key,
        /// Full row image before the update.
        before: Vec<Value>,
    },
    /// Undo of a delete: re-insert the before image.
    Delete {
        /// Table of the deleted row.
        table: TableId,
        /// Primary key of the deleted row.
        key: Key,
        /// Full row image before the delete.
        before: Vec<Value>,
    },
}

/// One slot of the striped table. `owner` is the generation tag (the id
/// occupying the slot; ids never repeat), `state` the lock-free lifecycle
/// byte, `undo` the stripe-local list, `begin_logged` the lazy
/// Begin-record flag used by the read-only commit fast path.
struct TxnSlot {
    owner: AtomicU64,
    state: AtomicU8,
    begin_logged: AtomicBool,
    /// Lower bound on the LSN of the transaction's first log record
    /// (0 = none yet). Published *before* the Begin record is appended,
    /// so a checkpoint that observes `begin_logged` can always learn a
    /// safe truncation floor (see `oldest_active_first_lsn`).
    first_lsn: AtomicU64,
    undo: Mutex<Vec<UndoEntry>>,
}

/// Counters describing transaction-table activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TxnStatsSnapshot {
    /// Transactions begun.
    pub begins: u64,
    /// Begin calls that had to wait for a slot whose occupant was still
    /// running (more concurrently active transactions than slots —
    /// back-pressure, counted once per stalled begin).
    pub begin_waits: u64,
    /// Stripe (per-slot undo mutex) acquisitions: begin's clear, each
    /// undo push, and the commit/abort extraction. Always slot-local and
    /// uncontended across transactions — the quantity the
    /// `critical_sections` bench reports as `txn_table_acquisitions`.
    ///
    /// Deliberately **no** counter for lock-free state lookups: a shared
    /// fetch-add on every stamp check would put one cache line back on
    /// the multicore read path this table exists to decentralize.
    pub stripe_acquisitions: u64,
}

/// Assigns transaction ids and tracks per-transaction state and undo logs
/// in a striped, lock-free-readable slot table (see the module docs).
pub struct TxnManager {
    next: AtomicU64,
    slots: Box<[TxnSlot]>,
    mask: u64,
    begins: AtomicU64,
    begin_waits: AtomicU64,
    stripe_acquisitions: AtomicU64,
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnManager {
    /// Creates an empty transaction manager with the default slot count.
    pub fn new() -> Self {
        Self::with_slots(DEFAULT_SLOTS)
    }

    /// Creates an empty transaction manager with `slots` slots (rounded
    /// up to a power of two). Tiny tables force slot recycling and
    /// begin back-pressure; the recycling tests use them.
    pub fn with_slots(slots: usize) -> Self {
        let slots = slots.next_power_of_two().max(2);
        TxnManager {
            next: AtomicU64::new(1),
            slots: (0..slots)
                .map(|_| TxnSlot {
                    owner: AtomicU64::new(0),
                    state: AtomicU8::new(STATE_FREE),
                    begin_logged: AtomicBool::new(false),
                    first_lsn: AtomicU64::new(0),
                    undo: Mutex::new(Vec::new()),
                })
                .collect(),
            mask: slots as u64 - 1,
            begins: AtomicU64::new(0),
            begin_waits: AtomicU64::new(0),
            stripe_acquisitions: AtomicU64::new(0),
        }
    }

    fn slot(&self, txn: TxnId) -> &TxnSlot {
        &self.slots[(txn & self.mask) as usize]
    }

    /// Verifies that `txn` still owns its slot; the ubiquitous guard of
    /// every owner-side operation.
    fn owned(&self, txn: TxnId) -> StorageResult<&TxnSlot> {
        let slot = self.slot(txn);
        if slot.owner.load(Ordering::Acquire) == txn {
            Ok(slot)
        } else {
            Err(StorageError::TxnNotActive(txn))
        }
    }

    /// How long `begin` politely waits for a colliding slot's occupant
    /// before abandoning the drawn id and taking a fresh one. Transient
    /// occupancy (CLAIMED, COMMITTING, UNDOING cleanup) resolves within a
    /// few yields; a genuinely *active* occupant may run arbitrarily
    /// long, and waiting on it would deadlock a caller that itself keeps
    /// that transaction open.
    const BEGIN_SPINS_BEFORE_REDRAW: usize = 128;

    /// Starts a new transaction. Lock-free except for the stripe-local
    /// undo clear. A drawn id whose slot is still occupied by a running
    /// transaction is **abandoned** after a brief spin and a fresh id
    /// drawn (consecutive ids map to consecutive slots, so the redraw is
    /// a linear probe over the table): one long-lived transaction can
    /// never wedge `begin`, even for the thread that holds it open.
    /// Only a table with *every* slot occupied by active transactions
    /// back-pressures — the documented more-active-than-slots case.
    pub fn begin(&self) -> TxnId {
        self.begins.fetch_add(1, Ordering::Relaxed);
        let mut stalled = false;
        let (id, slot) = 'draw: loop {
            let id = self.next.fetch_add(1, Ordering::Relaxed);
            let slot = self.slot(id);
            for _ in 0..Self::BEGIN_SPINS_BEFORE_REDRAW {
                let state = slot.state.load(Ordering::Acquire);
                let reclaimable = matches!(state, STATE_FREE | STATE_COMMITTED | STATE_ABORTED);
                if !reclaimable {
                    // Occupant still running or mid-cleanup: back-pressure
                    // briefly, then redraw. Abandoned ids are harmless —
                    // they were never returned, so nothing can query them.
                    if !stalled {
                        stalled = true;
                        self.begin_waits.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                    continue;
                }
                // The CLAIMED CAS is the one winner-takes-the-slot step;
                // two ids racing for the same slot serialize here.
                if slot
                    .state
                    .compare_exchange(state, STATE_CLAIMED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break 'draw (id, slot);
                }
            }
        };
        // We own the slot exclusively: install the generation tag before
        // anything else, so state() readers of the *previous* occupant
        // (whose id no longer matches `owner`) resolve to None, and
        // readers can never attribute the upcoming ACTIVE byte to it.
        // Nobody can query the new id before begin returns it.
        slot.owner.store(id, Ordering::Release);
        slot.begin_logged.store(false, Ordering::Relaxed);
        slot.first_lsn.store(0, Ordering::Relaxed);
        self.stripe_acquisitions.fetch_add(1, Ordering::Relaxed);
        slot.undo.lock().clear();
        slot.state.store(STATE_ACTIVE, Ordering::Release);
        id
    }

    /// Current state of a transaction (`None` if unknown — never begun,
    /// or finished long enough ago that its slot was recycled or GC'd).
    ///
    /// **Lock-free**: two `owner` loads bracket the `state` load. Owner
    /// ids are monotonic and never reused, so `owner == txn` both before
    /// and after the state read proves the byte belongs to `txn` (an
    /// owner word that ever leaves `txn` can never come back).
    pub fn state(&self, txn: TxnId) -> Option<TxnState> {
        let slot = self.slot(txn);
        if slot.owner.load(Ordering::Acquire) != txn {
            return None;
        }
        let state = slot.state.load(Ordering::Acquire);
        if slot.owner.load(Ordering::Acquire) != txn {
            return None;
        }
        match state {
            STATE_ACTIVE => Some(TxnState::Active),
            STATE_COMMITTING | STATE_COMMITTED => Some(TxnState::Committed),
            STATE_UNDOING | STATE_ABORTED => Some(TxnState::Aborted),
            // FREE after gc, or a CLAIMED byte caught while the *next*
            // occupant installs itself (then `txn` is long finished).
            _ => None,
        }
    }

    /// Number of currently active transactions.
    pub fn active_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state.load(Ordering::Acquire) == STATE_ACTIVE)
            .count()
    }

    /// Ids of currently active transactions (for checkpoints).
    pub fn active_txns(&self) -> Vec<TxnId> {
        self.slots
            .iter()
            .filter_map(|s| {
                // Owner first, state second, owner re-check: same torn-read
                // bracket as `state()`.
                let owner = s.owner.load(Ordering::Acquire);
                (owner != 0
                    && s.state.load(Ordering::Acquire) == STATE_ACTIVE
                    && s.owner.load(Ordering::Acquire) == owner)
                    .then_some(owner)
            })
            .collect()
    }

    /// Records an undo entry for an active transaction.
    pub fn push_undo(&self, txn: TxnId, entry: UndoEntry) -> StorageResult<()> {
        let slot = self.owned(txn)?;
        self.stripe_acquisitions.fetch_add(1, Ordering::Relaxed);
        let mut undo = slot.undo.lock();
        // Re-check under the stripe lock: commit/abort extraction CASes
        // the state away from ACTIVE *before* taking this lock, so an
        // entry pushed here is guaranteed to be seen by the extraction
        // (or rejected) — never silently lost.
        if slot.owner.load(Ordering::Acquire) != txn
            || slot.state.load(Ordering::Acquire) != STATE_ACTIVE
        {
            return Err(StorageError::TxnNotActive(txn));
        }
        undo.push(entry);
        Ok(())
    }

    /// Ensures the transaction exists and is active.
    pub fn check_active(&self, txn: TxnId) -> StorageResult<()> {
        match self.state(txn) {
            Some(TxnState::Active) => Ok(()),
            _ => Err(StorageError::TxnNotActive(txn)),
        }
    }

    /// Claims the right to write the transaction's Begin log record:
    /// `true` exactly once per transaction, on its first logged write
    /// (the read-only commit fast path skips Begin/Commit records and the
    /// force entirely when this was never claimed).
    pub fn claim_begin_log(&self, txn: TxnId) -> StorageResult<bool> {
        let slot = self.owned(txn)?;
        Ok(slot
            .begin_logged
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok())
    }

    /// Whether the transaction ever claimed its Begin record (i.e. wrote).
    pub fn begin_logged(&self, txn: TxnId) -> bool {
        let slot = self.slot(txn);
        slot.owner.load(Ordering::Acquire) == txn && slot.begin_logged.load(Ordering::Acquire)
    }

    /// Publishes a lower bound on the LSN of the transaction's first log
    /// record. Called by the `claim_begin_log` winner *before* it appends
    /// the Begin record, with `log.next_lsn_hint()` — the actual first
    /// LSN can only be higher, so the bound is always truncation-safe.
    pub fn note_first_lsn(&self, txn: TxnId, lower_bound: Lsn) -> StorageResult<()> {
        let slot = self.owned(txn)?;
        slot.first_lsn.store(lower_bound.max(1), Ordering::Release);
        Ok(())
    }

    /// A truncation-safe lower bound on the first log record of any
    /// currently in-flight transaction (`None` when no in-flight
    /// transaction has logged anything). In-flight means ACTIVE,
    /// COMMITTING, or UNDOING: mid-commit and mid-abort transactions
    /// still have records that recovery may need.
    ///
    /// For a slot whose `begin_logged` flag is set but whose `first_lsn`
    /// is still 0, the owner is between the claim CAS and the
    /// `note_first_lsn` store (two instructions apart); this spins out
    /// that window instead of guessing. A transaction that has not
    /// claimed its Begin yet cannot have records at or below any LSN the
    /// caller already read from the log, so it is safely skipped.
    pub fn oldest_active_first_lsn(&self) -> Option<Lsn> {
        let mut oldest: Option<Lsn> = None;
        for slot in self.slots.iter() {
            let owner = slot.owner.load(Ordering::Acquire);
            if owner == 0 {
                continue;
            }
            let state = slot.state.load(Ordering::Acquire);
            if !matches!(state, STATE_ACTIVE | STATE_COMMITTING | STATE_UNDOING) {
                continue;
            }
            if !slot.begin_logged.load(Ordering::Acquire) {
                continue;
            }
            let mut lsn = slot.first_lsn.load(Ordering::Acquire);
            while lsn == 0 {
                // Mid-claim window; re-check the owner in case the slot
                // was recycled under us.
                std::thread::yield_now();
                if slot.owner.load(Ordering::Acquire) != owner {
                    break;
                }
                lsn = slot.first_lsn.load(Ordering::Acquire);
            }
            if lsn > 0 && oldest.is_none_or(|o| lsn < o) {
                oldest = Some(lsn);
            }
        }
        oldest
    }

    /// Transitions an active transaction to `Committed`, returning its undo
    /// log length (for statistics).
    pub fn mark_committed(&self, txn: TxnId) -> StorageResult<usize> {
        let slot = self.owned(txn)?;
        // The CAS is the serialization point against double commit /
        // commit-after-abort and against concurrent push_undo.
        slot.state
            .compare_exchange(
                STATE_ACTIVE,
                STATE_COMMITTING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map_err(|_| StorageError::TxnNotActive(txn))?;
        self.stripe_acquisitions.fetch_add(1, Ordering::Relaxed);
        let n = std::mem::take(&mut *slot.undo.lock()).len();
        // Only now reclaimable: the undo extraction is complete.
        slot.state.store(STATE_COMMITTED, Ordering::Release);
        Ok(n)
    }

    /// Transitions an active transaction to `Aborted` and returns its undo
    /// log in reverse (application) order. The slot stays **unreclaimable**
    /// (and `state()` keeps answering `Aborted`) until the caller applies
    /// the undo and calls [`TxnManager::finish_aborted`] — recycling it
    /// earlier would let a stamp check mistake a mid-rollback record for a
    /// stable one.
    pub fn mark_aborted(&self, txn: TxnId) -> StorageResult<Vec<UndoEntry>> {
        let slot = self.owned(txn)?;
        slot.state
            .compare_exchange(
                STATE_ACTIVE,
                STATE_UNDOING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map_err(|_| StorageError::TxnNotActive(txn))?;
        self.stripe_acquisitions.fetch_add(1, Ordering::Relaxed);
        let mut undo = std::mem::take(&mut *slot.undo.lock());
        undo.reverse();
        Ok(undo)
    }

    /// Marks an aborted transaction's rollback complete, making its slot
    /// reclaimable. Must follow [`TxnManager::mark_aborted`] once undo has
    /// been fully applied.
    pub fn finish_aborted(&self, txn: TxnId) -> StorageResult<()> {
        let slot = self.owned(txn)?;
        slot.state
            .compare_exchange(
                STATE_UNDOING,
                STATE_ABORTED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map_err(|_| StorageError::TxnNotActive(txn))?;
        Ok(())
    }

    /// Drops bookkeeping for finished transactions (garbage collection);
    /// returns how many slots were cleared. With the striped table this
    /// is optional hygiene — recycling happens automatically on `begin` —
    /// but it preserves the old "state of a GC'd transaction is unknown"
    /// semantics.
    pub fn gc_finished(&self) -> usize {
        let mut cleared = 0;
        for slot in self.slots.iter() {
            let state = slot.state.load(Ordering::Acquire);
            if !matches!(state, STATE_COMMITTED | STATE_ABORTED) {
                continue;
            }
            // Winner-takes-the-slot CAS, same as begin's claim; the owner
            // tag stays in place (stale ids resolve to None via the FREE
            // state, and the next claim overwrites it anyway).
            if slot
                .state
                .compare_exchange(state, STATE_FREE, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                cleared += 1;
            }
        }
        cleared
    }

    /// Transaction-table activity counters.
    pub fn stats(&self) -> TxnStatsSnapshot {
        TxnStatsSnapshot {
            begins: self.begins.load(Ordering::Relaxed),
            begin_waits: self.begin_waits.load(Ordering::Relaxed),
            stripe_acquisitions: self.stripe_acquisitions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_assigns_unique_increasing_ids() {
        let tm = TxnManager::new();
        let a = tm.begin();
        let b = tm.begin();
        assert!(b > a);
        assert_eq!(tm.state(a), Some(TxnState::Active));
        assert_eq!(tm.active_count(), 2);
        assert_eq!(tm.active_txns().len(), 2);
    }

    #[test]
    fn commit_and_abort_transitions() {
        let tm = TxnManager::new();
        let a = tm.begin();
        tm.push_undo(
            a,
            UndoEntry::Insert {
                table: 1,
                key: vec![Value::Int(1)],
            },
        )
        .unwrap();
        assert_eq!(tm.mark_committed(a).unwrap(), 1);
        assert_eq!(tm.state(a), Some(TxnState::Committed));
        // Double commit / commit-after-abort are rejected.
        assert!(tm.mark_committed(a).is_err());
        assert!(tm.mark_aborted(a).is_err());
        assert!(tm
            .push_undo(
                a,
                UndoEntry::Insert {
                    table: 1,
                    key: vec![]
                }
            )
            .is_err());

        let b = tm.begin();
        tm.push_undo(
            b,
            UndoEntry::Insert {
                table: 1,
                key: vec![Value::Int(1)],
            },
        )
        .unwrap();
        tm.push_undo(
            b,
            UndoEntry::Update {
                table: 1,
                key: vec![Value::Int(1)],
                before: vec![Value::Int(1), Value::Bool(false)],
            },
        )
        .unwrap();
        let undo = tm.mark_aborted(b).unwrap();
        assert_eq!(undo.len(), 2);
        // Reverse order: the update is undone before the insert.
        assert!(matches!(undo[0], UndoEntry::Update { .. }));
        assert!(matches!(undo[1], UndoEntry::Insert { .. }));
        // Mid-undo the state still reads Aborted (stamp checks must treat
        // the records as unstable); finish makes the slot reclaimable.
        assert_eq!(tm.state(b), Some(TxnState::Aborted));
        tm.finish_aborted(b).unwrap();
        assert_eq!(tm.state(b), Some(TxnState::Aborted));
        assert!(tm.finish_aborted(b).is_err(), "double finish rejected");
    }

    #[test]
    fn unknown_txn_errors() {
        let tm = TxnManager::new();
        assert!(tm.check_active(99).is_err());
        assert!(tm.mark_committed(99).is_err());
        assert_eq!(tm.state(99), None);
    }

    #[test]
    fn gc_removes_finished_only() {
        let tm = TxnManager::new();
        let a = tm.begin();
        let b = tm.begin();
        tm.mark_committed(a).unwrap();
        assert_eq!(tm.gc_finished(), 1);
        assert_eq!(tm.state(a), None);
        assert_eq!(tm.state(b), Some(TxnState::Active));
    }

    #[test]
    fn concurrent_begins_are_unique() {
        use std::sync::Arc;
        let tm = Arc::new(TxnManager::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let tm = tm.clone();
                std::thread::spawn(move || (0..100).map(|_| tm.begin()).collect::<Vec<_>>())
            })
            .collect();
        let mut ids: Vec<TxnId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 800);
    }

    #[test]
    fn recycled_slot_never_aliases_a_stale_id() {
        // Two slots: ids 1 and 3 share slot 1, ids 2 and 4 share slot 0.
        let tm = TxnManager::with_slots(2);
        let a = tm.begin();
        tm.mark_committed(a).unwrap();
        let b = tm.begin();
        assert_eq!(tm.state(a), Some(TxnState::Committed));
        let c = tm.begin(); // recycles a's slot
        assert_eq!(c & 1, a & 1, "c reuses a's slot");
        // The generation tag makes the stale id resolve to None — never
        // to the new occupant's Active state.
        assert_eq!(tm.state(a), None);
        assert_eq!(tm.state(c), Some(TxnState::Active));
        assert_eq!(tm.state(b), Some(TxnState::Active));
        // Stale-owner guards: the old id can no longer do anything.
        assert!(tm
            .push_undo(
                a,
                UndoEntry::Insert {
                    table: 1,
                    key: vec![]
                }
            )
            .is_err());
        assert!(tm.mark_committed(a).is_err());
        assert!(tm.claim_begin_log(a).is_err());
    }

    #[test]
    fn begin_backpressures_when_all_slots_are_active() {
        use std::sync::Arc;
        let tm = Arc::new(TxnManager::with_slots(2));
        let a = tm.begin();
        let _b = tm.begin();
        // Slot table full: a third begin must wait until one finishes.
        let waiter = {
            let tm = tm.clone();
            std::thread::spawn(move || tm.begin())
        };
        // Give the waiter time to stall, then release a slot.
        while tm.stats().begin_waits == 0 {
            std::thread::yield_now();
        }
        tm.mark_committed(a).unwrap();
        let c = waiter.join().unwrap();
        assert_eq!(tm.state(c), Some(TxnState::Active));
        assert!(tm.stats().begin_waits >= 1);
    }

    #[test]
    fn long_lived_transaction_never_wedges_begin() {
        // One transaction stays open while the SAME thread churns through
        // more begins than the table has slots: every id colliding with
        // the long-lived occupant's slot must be abandoned and redrawn,
        // not spun on (which would deadlock — nobody else can finish it).
        let tm = TxnManager::with_slots(2);
        let long_lived = tm.begin();
        for _ in 0..8 {
            let t = tm.begin();
            assert_eq!(tm.state(t), Some(TxnState::Active));
            tm.mark_committed(t).unwrap();
        }
        assert_eq!(tm.state(long_lived), Some(TxnState::Active));
        tm.mark_committed(long_lived).unwrap();
        assert!(tm.stats().begin_waits >= 1, "collisions were redrawn");
    }

    #[test]
    fn aborted_slot_is_not_reclaimable_until_undo_finishes() {
        use std::sync::Arc;
        let tm = Arc::new(TxnManager::with_slots(2));
        let a = tm.begin();
        let _b = tm.begin();
        let undo = tm.mark_aborted(a).unwrap();
        assert!(undo.is_empty());
        // a's slot is UNDOING: the id that maps there must wait.
        let waiter = {
            let tm = tm.clone();
            std::thread::spawn(move || tm.begin())
        };
        while tm.stats().begin_waits == 0 {
            std::thread::yield_now();
        }
        assert_eq!(tm.state(a), Some(TxnState::Aborted), "mid-undo: aborted");
        tm.finish_aborted(a).unwrap();
        let c = waiter.join().unwrap();
        assert_eq!(tm.state(c), Some(TxnState::Active));
    }

    #[test]
    fn claim_begin_log_fires_once() {
        let tm = TxnManager::new();
        let a = tm.begin();
        assert!(!tm.begin_logged(a));
        assert!(tm.claim_begin_log(a).unwrap());
        assert!(!tm.claim_begin_log(a).unwrap());
        assert!(tm.begin_logged(a));
        tm.mark_committed(a).unwrap();
        // A recycled slot starts unclaimed again.
        let b = tm.begin();
        assert!(!tm.begin_logged(b));
    }
}

#[cfg(test)]
mod table_proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// What a writer thread recorded about one finished transaction.
    #[derive(Clone, Copy)]
    struct Finished {
        id: TxnId,
        committed: bool,
    }

    proptest! {
        /// N writer threads hammer a tiny slot table (constant recycling)
        /// while reader threads replay stamp checks against ids already
        /// finished: a finished id must never read back as `Active`, and
        /// never as the *wrong* finished state — exactly the generation
        /// guarantee `stamp_stable` depends on.
        #[test]
        fn stamp_checks_never_misread_recycled_slots(
            params in (1usize..4, 1usize..3, 20u64..80, 2usize..4)
        ) {
            let (writers, readers, per_thread, slots_log2) = params;
            let tm = Arc::new(TxnManager::with_slots(1 << slots_log2));
            let finished: Arc<parking_lot::Mutex<Vec<Finished>>> =
                Arc::new(parking_lot::Mutex::new(Vec::new()));
            let done = Arc::new(AtomicBool::new(false));

            let writer_handles: Vec<_> = (0..writers as u64)
                .map(|w| {
                    let tm = tm.clone();
                    let finished = finished.clone();
                    std::thread::spawn(move || {
                        for i in 0..per_thread {
                            let id = tm.begin();
                            assert_eq!(tm.state(id), Some(TxnState::Active));
                            let commit = (i + w) % 3 != 0;
                            if commit {
                                if i % 2 == 0 {
                                    tm.push_undo(
                                        id,
                                        UndoEntry::Insert { table: 1, key: vec![] },
                                    )
                                    .unwrap();
                                }
                                tm.mark_committed(id).unwrap();
                            } else {
                                tm.mark_aborted(id).unwrap();
                                // Mid-undo the id must read Aborted.
                                assert_eq!(tm.state(id), Some(TxnState::Aborted));
                                tm.finish_aborted(id).unwrap();
                            }
                            finished.lock().push(Finished { id, committed: commit });
                        }
                    })
                })
                .collect();

            let reader_handles: Vec<_> = (0..readers)
                .map(|_| {
                    let tm = tm.clone();
                    let finished = finished.clone();
                    let done = done.clone();
                    std::thread::spawn(move || {
                        let mut checks = 0u64;
                        let mut cursor = 0usize;
                        while !done.load(Ordering::Acquire) || checks == 0 {
                            let sample: Vec<Finished> = {
                                let log = finished.lock();
                                log.iter().skip(cursor).copied().collect()
                            };
                            cursor += sample.len();
                            for f in sample {
                                // Once recorded finished, the id may read as
                                // its true final state or None (recycled /
                                // GC'd) — never Active, never the opposite
                                // outcome.
                                match tm.state(f.id) {
                                    None => {}
                                    Some(TxnState::Committed) => assert!(
                                        f.committed,
                                        "aborted txn {} read back Committed",
                                        f.id
                                    ),
                                    Some(TxnState::Aborted) => assert!(
                                        !f.committed,
                                        "committed txn {} read back Aborted",
                                        f.id
                                    ),
                                    Some(TxnState::Active) => {
                                        panic!("finished txn {} read back Active", f.id)
                                    }
                                }
                                checks += 1;
                            }
                            std::thread::yield_now();
                        }
                        checks
                    })
                })
                .collect();

            for h in writer_handles {
                h.join().unwrap();
            }
            done.store(true, Ordering::Release);
            for h in reader_handles {
                prop_assert!(h.join().unwrap() > 0, "every reader checked something");
            }
            let total = writers as u64 * per_thread;
            let stats = tm.stats();
            prop_assert_eq!(stats.begins, total);
            prop_assert_eq!(tm.active_count(), 0);
        }
    }
}
