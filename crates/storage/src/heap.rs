//! Heap files: unordered collections of records stored in slotted pages.
//!
//! The heap itself is byte-agnostic (`insert`/`get`/`update`/`delete` move
//! opaque records), but it also understands the fixed 16-byte version
//! header the database facade prepends to every tuple
//! ([`crate::version`]): the `*_versioned` accessors split the header off,
//! [`HeapFile::read_version`] reads *only* the header (the cheap
//! revalidation probe of the validated-read protocol), and
//! [`HeapFile::get_for_update`] reads a record and stamps it
//! write-in-progress under a single page latch.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::types::{PageId, RecordId, TableId, TxnId};
use crate::version::{self, RecordVersion, RECORD_HEADER_BYTES};

/// Result of an in-place update attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The record was updated in place; its `RecordId` is unchanged.
    InPlace,
    /// The record no longer fit on its page and was moved; indexes must be
    /// updated to point at the new `RecordId`.
    Moved(RecordId),
}

/// Arc-swap cell over the heap's page list, the same retained-snapshot
/// idiom as the catalog's `SnapshotCell` in `db.rs`: readers (every
/// record access and every scan) do one `Acquire` pointer load — no
/// lock, no reference-count traffic — and the writer (page allocation,
/// once per ~8 KiB of inserted data) publishes a new list and retains
/// the superseded one for the heap's lifetime so loaded borrows never
/// dangle. Retention cost is one superseded list per allocated page —
/// quadratic in page count with a word-sized constant, and allocation
/// is off the hot path.
struct PageList {
    current: AtomicPtr<Vec<PageId>>,
    // Boxing keeps `current`'s pointee at a stable address when the
    // history vector reallocates.
    #[allow(clippy::vec_box)]
    history: Mutex<Vec<Box<Vec<PageId>>>>,
}

impl PageList {
    fn new() -> Self {
        let cell = PageList {
            current: AtomicPtr::new(std::ptr::null_mut()),
            history: Mutex::new(Vec::new()),
        };
        let mut history = cell.history.lock();
        cell.publish_locked(&mut history, Vec::new());
        drop(history);
        cell
    }

    fn load(&self) -> &[PageId] {
        // SAFETY: `current` always points at a box owned by `history`,
        // which only grows; the list outlives any `&self` borrow.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    #[allow(clippy::vec_box)] // see `history`: boxes pin the pointee's address
    fn publish_locked(&self, history: &mut Vec<Box<Vec<PageId>>>, pages: Vec<PageId>) {
        let boxed = Box::new(pages);
        let ptr = &*boxed as *const Vec<PageId> as *mut Vec<PageId>;
        // Retain before the swap so no reader can ever observe a pointer
        // whose box is not yet (or no longer) owned.
        history.push(boxed);
        self.current.store(ptr, Ordering::Release);
    }
}

/// A heap file for one table.
pub struct HeapFile {
    table: TableId,
    buffer: Arc<BufferPool>,
    /// Pages belonging to this heap, in allocation order.
    pages: PageList,
}

impl HeapFile {
    /// Creates an empty heap file for `table`.
    pub fn new(table: TableId, buffer: Arc<BufferPool>) -> Self {
        HeapFile {
            table,
            buffer,
            pages: PageList::new(),
        }
    }

    /// The table this heap belongs to.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Number of pages currently in the heap.
    pub fn page_count(&self) -> usize {
        self.pages.load().len()
    }

    /// Inserts a record and returns its new id.
    ///
    /// Insertion first tries the last page (append-mostly workloads such as
    /// TPC-C order lines benefit), then allocates a new page.
    pub fn insert(&self, record: &[u8]) -> StorageResult<RecordId> {
        loop {
            // Fast path: one atomic load of the page-list snapshot, no
            // lock.
            if let Some(&pid) = self.pages.load().last() {
                if let Some(slot) = self.buffer.with_page(pid, |p| (p.insert(record), true))? {
                    return Ok(RecordId::new(pid, slot));
                }
            }
            // Slow path: allocate a new page. The history mutex doubles
            // as the allocation lock so concurrent inserters don't
            // allocate a page each for the same overflow.
            let mut history = self.pages.history.lock();
            let snapshot = self.pages.load();
            if let Some(&pid) = snapshot.last() {
                if let Some(slot) = self.buffer.with_page(pid, |p| (p.insert(record), true))? {
                    return Ok(RecordId::new(pid, slot));
                }
            }
            let pid = self.buffer.allocate_page()?;
            let mut next = snapshot.to_vec();
            next.push(pid);
            self.pages.publish_locked(&mut history, next);
            drop(history);
            if let Some(slot) = self.buffer.with_page(pid, |p| (p.insert(record), true))? {
                return Ok(RecordId::new(pid, slot));
            }
            // Concurrent inserters filled our fresh page before we got
            // to it. If the record can never fit even in an empty page,
            // fail; otherwise go around again.
            if crate::page::SlottedPage::new().insert(record).is_none() {
                return Err(StorageError::PageFull);
            }
        }
    }

    /// Reads the record at `rid`.
    pub fn get(&self, rid: RecordId) -> StorageResult<Vec<u8>> {
        self.buffer
            .read_page(rid.page, |p| p.get(rid.slot).map(|r| r.to_vec()))?
            .ok_or(StorageError::NotFound)
    }

    /// Reads the record at `rid` and splits off its version header.
    pub fn get_versioned(&self, rid: RecordId) -> StorageResult<(RecordVersion, Vec<u8>)> {
        let bytes = self.get(rid)?;
        let (ver, payload) = version::split(&bytes)?;
        Ok((ver, payload.to_vec()))
    }

    /// Reads only the version header of the record at `rid` — the
    /// revalidation probe of the validated-read protocol. Copies 16 bytes
    /// instead of the whole record.
    pub fn read_version(&self, rid: RecordId) -> StorageResult<RecordVersion> {
        self.buffer
            .read_page(rid.page, |p| {
                p.prefix(rid.slot, RECORD_HEADER_BYTES)
                    .map(RecordVersion::from_bytes)
            })?
            .ok_or(StorageError::NotFound)?
    }

    /// Overwrites only the version header of the record at `rid` (the
    /// record's length and position never change).
    pub fn write_version(&self, rid: RecordId, version: RecordVersion) -> StorageResult<()> {
        let written = self.buffer.with_page(rid.page, |p| {
            (p.write_prefix(rid.slot, &version.to_bytes()), true)
        })?;
        if written {
            Ok(())
        } else {
            Err(StorageError::NotFound)
        }
    }

    /// Reads the record at `rid` and, under the same page latch, stamps it
    /// **write-in-progress** (odd version word, `stamp` as the writer) —
    /// the seqlock entry point of the versioned update/delete path. The
    /// caller must either publish a new image (an even header) or restore
    /// the returned header on its error path; a record left odd blocks
    /// validated readers until its writer's transaction finishes.
    pub fn get_for_update(
        &self,
        rid: RecordId,
        stamp: TxnId,
    ) -> StorageResult<(RecordVersion, Vec<u8>)> {
        self.buffer.with_page(rid.page, |p| {
            let Some(bytes) = p.get(rid.slot) else {
                return (Err(StorageError::NotFound), false);
            };
            let (ver, payload) = match version::split(bytes) {
                Ok((ver, payload)) => (ver, payload.to_vec()),
                Err(e) => return (Err(e), false),
            };
            let marked = p.write_prefix(rid.slot, &ver.begin_write(stamp).to_bytes());
            debug_assert!(marked, "record present but header write failed");
            (Ok((ver, payload)), true)
        })?
    }

    /// Updates the record at `rid`, relocating it if it no longer fits.
    pub fn update(&self, rid: RecordId, record: &[u8]) -> StorageResult<UpdateOutcome> {
        let updated = self
            .buffer
            .with_page(rid.page, |p| (p.update(rid.slot, record), true))?;
        if updated {
            return Ok(UpdateOutcome::InPlace);
        }
        // Record missing or page out of space: distinguish the two.
        let exists = self
            .buffer
            .read_page(rid.page, |p| p.get(rid.slot).is_some())?;
        if !exists {
            return Err(StorageError::NotFound);
        }
        // Relocate: delete then insert elsewhere.
        self.delete(rid)?;
        let new_rid = self.insert(record)?;
        Ok(UpdateOutcome::Moved(new_rid))
    }

    /// Deletes the record at `rid`.
    pub fn delete(&self, rid: RecordId) -> StorageResult<()> {
        let deleted = self
            .buffer
            .with_page(rid.page, |p| (p.delete(rid.slot), true))?;
        if deleted {
            Ok(())
        } else {
            Err(StorageError::NotFound)
        }
    }

    /// Full scan: returns every live record with its id.
    ///
    /// The scan materializes page contents one page at a time; it is used by
    /// table loaders, recovery verification and the (rare) unindexed paths
    /// of the workloads.
    pub fn scan(&self) -> StorageResult<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        for &pid in self.pages.load() {
            self.buffer.read_page(pid, |p| {
                for (slot, rec) in p.iter() {
                    out.push((RecordId::new(pid, slot), rec.to_vec()));
                }
            })?;
        }
        Ok(out)
    }

    /// Number of live records (scans the heap).
    pub fn record_count(&self) -> StorageResult<usize> {
        Ok(self.scan()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> HeapFile {
        HeapFile::new(1, Arc::new(BufferPool::in_memory(64)))
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap();
        let rid = h.insert(b"tuple-1").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"tuple-1");
        assert_eq!(h.table(), 1);
    }

    #[test]
    fn get_missing_record_errors() {
        let h = heap();
        let rid = h.insert(b"x").unwrap();
        h.delete(rid).unwrap();
        assert_eq!(h.get(rid), Err(StorageError::NotFound));
        assert_eq!(h.delete(rid), Err(StorageError::NotFound));
    }

    #[test]
    fn update_in_place_and_moved() {
        let h = heap();
        let rid = h.insert(&[1u8; 100]).unwrap();
        assert_eq!(h.update(rid, &[2u8; 50]).unwrap(), UpdateOutcome::InPlace);
        assert_eq!(h.get(rid).unwrap(), vec![2u8; 50]);
        // Fill the page so a growing update must relocate.
        while h.page_count() == 1 {
            h.insert(&vec![3u8; 500]).unwrap();
        }
        // rid's page is now full of big records; a very large growth may move.
        match h.update(rid, &vec![4u8; 7000]).unwrap() {
            UpdateOutcome::Moved(new_rid) => {
                assert_eq!(h.get(new_rid).unwrap(), vec![4u8; 7000]);
                assert!(h.get(rid).is_err());
            }
            UpdateOutcome::InPlace => {
                assert_eq!(h.get(rid).unwrap(), vec![4u8; 7000]);
            }
        }
    }

    #[test]
    fn spills_to_multiple_pages_and_scans() {
        let h = heap();
        let mut rids = Vec::new();
        for i in 0..2000u32 {
            rids.push(h.insert(format!("record-{i:05}").as_bytes()).unwrap());
        }
        assert!(h.page_count() > 1);
        let scanned = h.scan().unwrap();
        assert_eq!(scanned.len(), 2000);
        assert_eq!(h.record_count().unwrap(), 2000);
        // Every inserted rid is present in the scan.
        let ids: std::collections::HashSet<_> = scanned.iter().map(|(r, _)| *r).collect();
        for r in rids {
            assert!(ids.contains(&r));
        }
    }

    #[test]
    fn versioned_accessors_roundtrip_headers() {
        let h = heap();
        let v = RecordVersion::initial(7);
        let rid = h.insert(&version::encode_record(v, b"tuple")).unwrap();
        assert_eq!(h.get_versioned(rid).unwrap(), (v, b"tuple".to_vec()));
        assert_eq!(h.read_version(rid).unwrap(), v);

        // get_for_update returns the pre-image and leaves the record odd.
        let (before, payload) = h.get_for_update(rid, 9).unwrap();
        assert_eq!(before, v);
        assert_eq!(payload, b"tuple");
        let marked = h.read_version(rid).unwrap();
        assert!(marked.is_write_in_progress());
        assert_eq!(marked.stamp, 9);

        // Publishing a new even header makes the record stable again.
        h.write_version(rid, before.publish(9)).unwrap();
        let published = h.read_version(rid).unwrap();
        assert!(!published.is_write_in_progress());
        assert_eq!(published.word, before.word + 2);

        h.delete(rid).unwrap();
        assert!(h.read_version(rid).is_err());
        assert!(h.write_version(rid, v).is_err());
        assert!(h.get_for_update(rid, 1).is_err());
    }

    #[test]
    fn concurrent_inserts_do_not_lose_records() {
        let h = Arc::new(heap());
        let mut handles = Vec::new();
        for t in 0..8 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    h.insert(format!("{t}:{i}").as_bytes()).unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.record_count().unwrap(), 8 * 250);
    }
}
