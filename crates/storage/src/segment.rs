//! On-disk WAL segments: framing, rotation, fsync policy, torn-tail
//! replay, and truncation.
//!
//! # Layout
//!
//! The log directory holds fixed-capacity segment files named
//! `seg-<seq>-<first_lsn>.wal` (both fields zero-padded decimal so the
//! lexicographic order is the log order). Each segment is:
//!
//! ```text
//! ┌──────────── header (24 bytes) ───────────┐┌──── records … ────┐
//! │ magic u32 │ ver u32 │ seq u64 │ lsn u64  ││ rec │ rec │ rec │…│
//! └──────────────────────────────────────────┘└───────────────────┘
//! one record:
//! ┌ len u32 ┐┌ crc32 u32 ┐┌───── payload (len bytes) ─────┐
//! │         ││ of payload ││ lsn u64 │ txn u64 │ tag │ …   │
//! └─────────┴└───────────┘└───────────────────────────────┘
//! ```
//!
//! Segment sequence numbers are monotonic across restarts (a restart
//! continues from `max(seq)+1`), and record LSNs are contiguous across
//! the whole segment chain.
//!
//! # Write path and fsync-failure policy
//!
//! [`SegmentWriter::buffer`] is infallible (no I/O); [`SegmentWriter::flush`]
//! writes every buffered record, rotating at record boundaries, and
//! fsyncs. Failures split into exactly two classes:
//!
//! * **Retryable** ([`WalIoError::retryable`]) — the failed step wrote
//!   nothing: creating the next segment file (or making its header
//!   durable) failed and the partial file was removed. Buffered records
//!   are kept; a later flush may succeed.
//! * **Fatal (poisoning)** — bytes may have partially reached a file (a
//!   short/torn append mid-record) or an fsync failed over dirty pages
//!   the kernel may have dropped. Every byte after a torn record is
//!   unreachable to replay (framing is lost), so the writer poisons
//!   itself: all subsequent flushes fail visibly instead of silently
//!   re-fsyncing over lost data.
//!
//! # Replay
//!
//! [`read_log`] replays the segment chain in sequence order and cuts a
//! **clean prefix** at the first sign of tearing — a short header, a
//! record whose length field overruns the file, a CRC32 mismatch, an
//! undecodable payload, or an LSN discontinuity. It never panics on any
//! byte sequence.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;

use crate::error::{StorageError, StorageResult};
use crate::io::{WalFile, WalFs};
use crate::types::Lsn;
use crate::wal::LogRecord;

/// First four bytes of every segment file (`DWAL` little-endian).
pub const SEGMENT_MAGIC: u32 = 0x4c41_5744;
/// Segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Bytes of the fixed segment header.
pub const SEGMENT_HEADER_BYTES: usize = 24;
/// Bytes of the per-record frame prefix (`len` + `crc`).
pub const RECORD_FRAME_BYTES: usize = 8;
/// Default segment capacity. Small enough that the crash harness and
/// checkpoint-truncation tests rotate many times; a production config
/// would raise it via [`WalConfig::segment_bytes`].
pub const DEFAULT_SEGMENT_BYTES: usize = 1 << 20;
/// Upper bound a replayer will believe for one record's length; a torn
/// length field that happens to decode huge must not allocate gigabytes.
const MAX_RECORD_BYTES: usize = 64 << 20;

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table-driven — implemented here because the workspace
// builds fully offline with no third-party crates.
// ---------------------------------------------------------------------------

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC32 of `bytes` (the polynomial zlib/gzip use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------------
// Configuration and errors
// ---------------------------------------------------------------------------

/// Where and how the durable log lives.
#[derive(Clone)]
pub struct WalConfig {
    /// Directory holding segment and checkpoint files.
    pub dir: PathBuf,
    /// Capacity at which a segment seals and the writer rotates.
    pub segment_bytes: usize,
    /// File-system implementation (real or fault-injecting).
    pub fs: Arc<dyn WalFs>,
}

impl std::fmt::Debug for WalConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalConfig")
            .field("dir", &self.dir)
            .field("segment_bytes", &self.segment_bytes)
            .finish_non_exhaustive()
    }
}

impl WalConfig {
    /// Real files under `dir` with the default segment size.
    pub fn std_fs(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fs: Arc::new(crate::io::StdFs),
        }
    }

    /// A simulated file system (fault injection / tests).
    pub fn sim(dir: impl Into<PathBuf>, fs: crate::io::SimFs) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fs: Arc::new(fs),
        }
    }

    /// Overrides the segment capacity.
    pub fn with_segment_bytes(mut self, bytes: usize) -> Self {
        self.segment_bytes = bytes.max(SEGMENT_HEADER_BYTES + RECORD_FRAME_BYTES);
        self
    }
}

/// A log I/O failure, split into the two policy classes described in the
/// module docs.
#[derive(Debug, Clone)]
pub struct WalIoError {
    /// True when the failed step wrote nothing and may be retried.
    pub retryable: bool,
    /// Human-readable cause.
    pub detail: String,
}

impl From<WalIoError> for StorageError {
    fn from(e: WalIoError) -> Self {
        if e.retryable {
            StorageError::LogIo(e.detail)
        } else {
            StorageError::LogPoisoned(e.detail)
        }
    }
}

fn segment_file_name(seq: u64, first_lsn: Lsn) -> String {
    format!("seg-{seq:08}-{first_lsn:012}.wal")
}

/// Parses `seg-<seq>-<lsn>.wal`; returns `None` for foreign files.
fn parse_segment_name(name: &str) -> Option<(u64, Lsn)> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".wal")?;
    let (seq, lsn) = rest.split_once('-')?;
    Some((seq.parse().ok()?, lsn.parse().ok()?))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct OpenSegment {
    file: Box<dyn WalFile>,
    bytes: usize,
}

/// Metadata of a sealed (rotated, fully fsynced) segment, kept for
/// truncation decisions.
#[derive(Debug, Clone)]
pub struct SealedSegment {
    /// Monotonic sequence number (also in the file name).
    pub seq: u64,
    /// LSN of the segment's first record.
    pub first_lsn: Lsn,
    /// LSN of the segment's last record.
    pub last_lsn: Lsn,
}

/// Buffers framed records and writes them to segment files with
/// rotation and group fsync. All I/O happens in [`SegmentWriter::flush`],
/// which the log's single group-commit flusher calls under its mutex —
/// the writer itself needs no synchronization.
pub struct SegmentWriter {
    cfg: WalConfig,
    next_seq: u64,
    sealed: Vec<SealedSegment>,
    current: Option<OpenSegment>,
    current_meta: Option<SealedSegment>,
    /// Framed records not yet written: `(lsn, frame_bytes)`.
    pending: VecDeque<(Lsn, Vec<u8>)>,
    poisoned: Option<String>,
}

impl SegmentWriter {
    /// A writer that will create its first segment at sequence number
    /// `next_seq` on the first flush. No I/O happens here.
    pub fn new(cfg: WalConfig, next_seq: u64) -> Self {
        Self::recovered(cfg, next_seq, Vec::new())
    }

    /// A writer attached over a directory that already holds segments
    /// (recovery). Registering the surviving segments matters: a later
    /// [`truncate_below`](Self::truncate_below) can only remove files it
    /// knows about, and a checkpoint that removed *new* segments while
    /// leaking pre-crash ones would leave an LSN gap in the directory
    /// that the next replay reads as a torn log.
    pub fn recovered(cfg: WalConfig, next_seq: u64, sealed: Vec<SealedSegment>) -> Self {
        SegmentWriter {
            cfg,
            next_seq,
            sealed,
            current: None,
            current_meta: None,
            pending: VecDeque::new(),
            poisoned: None,
        }
    }

    /// Frames and buffers one record. Infallible: no file I/O.
    pub fn buffer(&mut self, rec: &LogRecord) {
        let mut payload = Vec::new();
        crate::wal::encode_record(rec, &mut payload);
        let mut frame = Vec::with_capacity(RECORD_FRAME_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.pending.push_back((rec.lsn, frame));
    }

    /// Bytes buffered but not yet on disk.
    pub fn pending_bytes(&self) -> usize {
        self.pending.iter().map(|(_, f)| f.len()).sum()
    }

    /// The poisoning cause, if an earlier flush hit a fatal failure.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    fn poison(&mut self, detail: String) -> WalIoError {
        self.poisoned = Some(detail.clone());
        WalIoError {
            retryable: false,
            detail,
        }
    }

    /// Creates the next segment file with a durable header, or cleans up
    /// and reports a retryable error (nothing observable was written).
    fn open_segment(&mut self, first_lsn: Lsn) -> Result<(), WalIoError> {
        let seq = self.next_seq;
        let path = self.cfg.dir.join(segment_file_name(seq, first_lsn));
        let mut file = match self.cfg.fs.create(&path) {
            Ok(f) => f,
            Err(e) => {
                return Err(WalIoError {
                    retryable: true,
                    detail: format!("create segment {}: {e}", path.display()),
                })
            }
        };
        let mut header = Vec::with_capacity(SEGMENT_HEADER_BYTES);
        header.extend_from_slice(&SEGMENT_MAGIC.to_le_bytes());
        header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        header.extend_from_slice(&seq.to_le_bytes());
        header.extend_from_slice(&first_lsn.to_le_bytes());
        let dir = self.cfg.dir.clone();
        let wrote = file
            .append(&header)
            .and_then(|()| self.cfg.fs.sync_dir(&dir));
        if let Err(e) = wrote {
            // The header may be torn, but replay cuts an invalid header
            // cleanly and nothing of the *log* was in this file yet, so
            // removing it restores the exact pre-call state.
            return match self.cfg.fs.remove_file(&path) {
                Ok(()) => Err(WalIoError {
                    retryable: true,
                    detail: format!("segment header {}: {e}", path.display()),
                }),
                Err(rm) => Err(self.poison(format!(
                    "segment header {}: {e}; cleanup also failed: {rm}",
                    path.display()
                ))),
            };
        }
        self.next_seq += 1;
        self.current = Some(OpenSegment {
            file,
            bytes: SEGMENT_HEADER_BYTES,
        });
        self.current_meta = Some(SealedSegment {
            seq,
            first_lsn,
            last_lsn: first_lsn,
        });
        Ok(())
    }

    /// Writes and fsyncs every buffered record, rotating segments at
    /// record boundaries. On success the records are durable.
    pub fn flush(&mut self) -> Result<(), WalIoError> {
        if let Some(cause) = &self.poisoned {
            return Err(WalIoError {
                retryable: false,
                detail: cause.clone(),
            });
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        while let Some((lsn, len)) = self.pending.front().map(|(l, f)| (*l, f.len())) {
            let rotate = match &self.current {
                None => true,
                Some(seg) => {
                    seg.bytes > SEGMENT_HEADER_BYTES && seg.bytes + len > self.cfg.segment_bytes
                }
            };
            if rotate {
                if let Some(mut seg) = self.current.take() {
                    // Seal: the old segment's records must be durable
                    // before the chain moves past them.
                    if let Err(e) = seg.file.sync() {
                        return Err(self.poison(format!("fsync sealing segment: {e}")));
                    }
                    if let Some(meta) = self.current_meta.take() {
                        self.sealed.push(meta);
                    }
                }
                self.open_segment(lsn)?;
            }
            let frame = &self.pending.front().expect("non-empty: peeked above").1;
            let seg = self.current.as_mut().expect("segment opened above");
            if let Err(e) = seg.file.append(frame) {
                // An arbitrary prefix of the frame may be on disk: the
                // segment now (possibly) ends in a torn record and every
                // later byte would be unreachable to replay.
                return Err(self.poison(format!("append record lsn {lsn}: {e}")));
            }
            seg.bytes += len;
            if let Some(meta) = self.current_meta.as_mut() {
                meta.last_lsn = lsn;
            }
            self.pending.pop_front();
        }
        if let Some(seg) = self.current.as_mut() {
            if let Err(e) = seg.file.sync() {
                // The kernel may have dropped the dirty pages; a retry
                // would silently re-ack lost data.
                return Err(self.poison(format!("fsync: {e}")));
            }
        }
        Ok(())
    }

    /// Deletes sealed segments whose every record is below `keep_from`
    /// (covered by a checkpoint). Returns how many were removed; removal
    /// errors are ignored (a leftover segment is re-deletable later and
    /// harmless to replay).
    pub fn truncate_below(&mut self, keep_from: Lsn) -> usize {
        let mut removed = 0;
        self.sealed.retain(|meta| {
            if meta.last_lsn < keep_from {
                let path = self
                    .cfg
                    .dir
                    .join(segment_file_name(meta.seq, meta.first_lsn));
                if self.cfg.fs.remove_file(&path).is_ok() {
                    removed += 1;
                    return false;
                }
            }
            true
        });
        removed
    }

    /// Sealed-segment metadata (oldest first), for tests and stats.
    pub fn sealed_segments(&self) -> &[SealedSegment] {
        &self.sealed
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Result of replaying a log directory.
pub struct ReplaySet {
    /// The clean record prefix in LSN order.
    pub records: Vec<LogRecord>,
    /// LSN of the last clean record (0 when none).
    pub last_lsn: Lsn,
    /// Sequence number the next created segment must use.
    pub next_seq: u64,
    /// Why (and that) the tail was cut, when it was. `None` when every
    /// record in the directory made it into the prefix — including runs
    /// where a *stale* tear (a previous crash's garbage that an earlier
    /// recovery already skipped) was resumed past.
    pub torn: Option<String>,
    /// Every segment that contributed records (oldest first), with the
    /// contributed LSN range. Seed [`SegmentWriter::recovered`] with
    /// this so checkpoint truncation can remove pre-crash files.
    pub sealed: Vec<SealedSegment>,
}

/// Replays every segment in `cfg.dir`, tolerating torn content: a
/// segment scan stops at the first invalid header, short frame, CRC
/// mismatch, undecodable payload, or LSN discontinuity. The chain then
/// *resumes* at a later segment only if that segment's first record
/// carries exactly the next expected LSN — which happens when the cut
/// bytes were a previous crash's stale tail that the recovery in
/// between already skipped (its writer restarted the LSN right after
/// the clean prefix, in a fresh segment). Anything else ends the
/// prefix: CRC-valid, LSN-contiguous records cannot be forged by
/// corruption. I/O errors (listing or reading a file) are real errors;
/// corrupt *content* never is.
pub fn read_log(cfg: &WalConfig) -> StorageResult<ReplaySet> {
    let names = cfg
        .fs
        .list_dir(&cfg.dir)
        .map_err(|e| StorageError::LogIo(format!("list {}: {e}", cfg.dir.display())))?;
    let mut segs: Vec<(u64, Lsn, String)> = names
        .iter()
        .filter_map(|n| parse_segment_name(n).map(|(s, l)| (s, l, n.clone())))
        .collect();
    segs.sort();
    let next_seq = segs.iter().map(|(s, _, _)| s + 1).max().unwrap_or(1);

    let mut records: Vec<LogRecord> = Vec::new();
    let mut sealed: Vec<SealedSegment> = Vec::new();
    // The most recent cut that no later segment has resumed past. If it
    // is still set when the scan finishes, the tail really is torn.
    let mut cut: Option<String> = None;
    let mut expected_lsn: Option<Lsn> = None;
    for (seq, name_lsn, name) in segs {
        let path = cfg.dir.join(&name);
        let bytes = cfg
            .fs
            .read(&path)
            .map_err(|e| StorageError::LogIo(format!("read {}: {e}", path.display())))?;
        if bytes.len() < SEGMENT_HEADER_BYTES {
            cut = Some(format!("{name}: short header ({} bytes)", bytes.len()));
            if expected_lsn.is_none() {
                break; // no prefix to resume onto
            }
            continue;
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("sliced"));
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("sliced"));
        let hdr_seq = u64::from_le_bytes(bytes[8..16].try_into().expect("sliced"));
        let hdr_lsn = u64::from_le_bytes(bytes[16..24].try_into().expect("sliced"));
        if magic != SEGMENT_MAGIC
            || version != SEGMENT_VERSION
            || hdr_seq != seq
            || hdr_lsn != name_lsn
        {
            cut = Some(format!("{name}: invalid or torn header"));
            if expected_lsn.is_none() {
                break; // no prefix to resume onto
            }
            continue;
        }
        // A whole segment whose records do not continue the prefix is
        // skipped without consuming anything: it is either garbage past
        // a real tear, or (if it *does* continue) the resumption point.
        if let (Some(want), true) = (expected_lsn, cut.is_some()) {
            if hdr_lsn != want {
                continue;
            }
        }
        let mut seg_first: Option<Lsn> = None;
        let mut seg_last: Lsn = 0;
        let mut pos = SEGMENT_HEADER_BYTES;
        while pos < bytes.len() {
            if pos + RECORD_FRAME_BYTES > bytes.len() {
                cut = Some(format!("{name}: torn frame prefix at offset {pos}"));
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("sliced")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("sliced"));
            let start = pos + RECORD_FRAME_BYTES;
            if len > MAX_RECORD_BYTES || start + len > bytes.len() {
                cut = Some(format!(
                    "{name}: record length {len} overruns file at {pos}"
                ));
                break;
            }
            let payload = &bytes[start..start + len];
            if crc32(payload) != crc {
                cut = Some(format!("{name}: CRC mismatch at offset {pos}"));
                break;
            }
            let rec = match crate::wal::decode_record(payload, &mut 0) {
                Ok(r) => r,
                Err(e) => {
                    cut = Some(format!("{name}: undecodable payload at offset {pos}: {e}"));
                    break;
                }
            };
            let want = match expected_lsn {
                None => hdr_lsn,
                Some(want) => want,
            };
            if rec.lsn != want {
                cut = Some(format!(
                    "{name}: lsn discontinuity: expected {want}, found {}",
                    rec.lsn
                ));
                break;
            }
            // This record extends the contiguous prefix: any earlier
            // cut was a stale tear that is now proven harmless.
            cut = None;
            expected_lsn = Some(rec.lsn + 1);
            seg_first.get_or_insert(rec.lsn);
            seg_last = rec.lsn;
            records.push(rec);
            pos = start + len;
        }
        // Register the contributed range (or, for a record-less but
        // validly-headed segment, an empty range just below its header
        // LSN) so a later checkpoint can truncate the file.
        sealed.push(SealedSegment {
            seq,
            first_lsn: seg_first.unwrap_or(hdr_lsn),
            last_lsn: if seg_first.is_some() {
                seg_last
            } else {
                hdr_lsn.saturating_sub(1)
            },
        });
        if cut.is_some() && expected_lsn.is_none() {
            break; // corruption before any record: nothing to resume onto
        }
    }
    let last_lsn = records.last().map(|r| r.lsn).unwrap_or(0);
    Ok(ReplaySet {
        records,
        last_lsn,
        next_seq,
        torn: cut,
        sealed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultPlan, SimFs};
    use crate::types::Value;
    use crate::wal::LogPayload;
    use std::path::Path;

    fn cfg(fs: &SimFs) -> WalConfig {
        WalConfig::sim("/wal", fs.clone()).with_segment_bytes(160)
    }

    fn rec(lsn: Lsn, txn: u64, n: i64) -> LogRecord {
        LogRecord {
            lsn,
            txn,
            payload: LogPayload::Insert {
                table: 1,
                key: vec![Value::BigInt(n)],
                tuple: vec![Value::BigInt(n), Value::Varchar(format!("row-{n}"))],
            },
        }
    }

    fn write_records(fs: &SimFs, upto: u64) -> SegmentWriter {
        let mut w = SegmentWriter::new(cfg(fs), 1);
        for lsn in 1..=upto {
            w.buffer(&rec(lsn, lsn, lsn as i64));
        }
        w.flush().expect("flush");
        w
    }

    #[test]
    fn replay_resumes_past_a_stale_tear_left_by_a_prior_recovery() {
        let fs = SimFs::new();
        write_records(&fs, 10);
        // Tear the newest segment's tail the way a crash mid-append
        // would: a few garbage bytes past the last clean record.
        let names = fs.list_dir(Path::new("/wal")).unwrap();
        let newest = Path::new("/wal").join(names.last().unwrap());
        let mut bytes = fs.snapshot(&newest).unwrap();
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe]);
        fs.install(&newest, bytes);

        let replay = read_log(&cfg(&fs)).unwrap();
        assert!(replay.torn.is_some(), "tear must be detected");
        assert_eq!(replay.last_lsn, 10);

        // The recovery that observed the tear restarts appends at lsn 11
        // in a fresh segment — the torn bytes stay on disk.
        let mut w = SegmentWriter::recovered(cfg(&fs), replay.next_seq, replay.sealed);
        for lsn in 11..=15 {
            w.buffer(&rec(lsn, lsn, lsn as i64));
        }
        w.flush().expect("flush after recovery");

        // A later replay must not stop at the stale tear: the next
        // segment resumes the LSN chain exactly, proving nothing between
        // was lost.
        let replay2 = read_log(&cfg(&fs)).unwrap();
        assert!(replay2.torn.is_none(), "torn: {:?}", replay2.torn);
        assert_eq!(replay2.last_lsn, 15);
        for (i, r) in replay2.records.iter().enumerate() {
            assert_eq!(r.lsn, i as u64 + 1);
        }
    }

    #[test]
    fn recovered_writer_truncates_segments_from_before_the_restart() {
        let fs = SimFs::new();
        write_records(&fs, 20); // prior incarnation dies here
        let files_before = fs.list_dir(Path::new("/wal")).unwrap().len();

        let replay = read_log(&cfg(&fs)).unwrap();
        assert_eq!(replay.sealed.len(), files_before, "every file registered");
        let mut w = SegmentWriter::recovered(cfg(&fs), replay.next_seq, replay.sealed);
        for lsn in 21..=25 {
            w.buffer(&rec(lsn, lsn, lsn as i64));
        }
        w.flush().expect("flush after recovery");

        // A checkpoint at lsn 21 must be able to drop every pre-restart
        // file — leaking them would leave an LSN gap after the next
        // truncation-plus-crash cycle.
        let removed = w.truncate_below(21);
        assert_eq!(removed, files_before);
        let replay2 = read_log(&cfg(&fs)).unwrap();
        assert!(replay2.torn.is_none(), "torn: {:?}", replay2.torn);
        assert_eq!(replay2.records.first().map(|r| r.lsn), Some(21));
        assert_eq!(replay2.last_lsn, 25);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_a686);
    }

    #[test]
    fn round_trip_across_rotated_segments() {
        let fs = SimFs::new();
        let w = write_records(&fs, 20);
        assert!(
            !w.sealed_segments().is_empty(),
            "160-byte segments must rotate for 20 records"
        );
        let replay = read_log(&cfg(&fs)).unwrap();
        assert!(replay.torn.is_none(), "torn: {:?}", replay.torn);
        assert_eq!(replay.records.len(), 20);
        assert_eq!(replay.last_lsn, 20);
        assert_eq!(replay.next_seq, w.next_seq);
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r.lsn, i as u64 + 1);
        }
    }

    #[test]
    fn crash_before_sync_loses_only_unsynced_suffix() {
        let fs = SimFs::new();
        let mut w = write_records(&fs, 10);
        for lsn in 11..=14 {
            w.buffer(&rec(lsn, lsn, lsn as i64));
        }
        // Buffered but never flushed: a crash must replay exactly 1..=10.
        fs.crash(7);
        let replay = read_log(&cfg(&fs)).unwrap();
        assert_eq!(replay.last_lsn, 10);
        assert!(replay.torn.is_none());
    }

    #[test]
    fn torn_tail_is_cut_cleanly_at_every_seed() {
        for seed in 0..40u64 {
            let fs = SimFs::new();
            let mut w = write_records(&fs, 6);
            // Crash during the next flush, tearing the in-flight append
            // at a seed-chosen byte offset; everything already fsynced
            // (1..=6) must survive in full.
            fs.set_faults(FaultPlan {
                crash_after_append: Some((fs.op_counts().0 + 2, seed)),
                ..FaultPlan::default()
            });
            for lsn in 7..=9 {
                w.buffer(&rec(lsn, lsn, lsn as i64));
            }
            let _ = w.flush(); // dies mid-write
            let replay = read_log(&cfg(&fs)).unwrap();
            assert!(replay.last_lsn >= 6, "seed {seed}: {:?}", replay.torn);
            // Prefix property: lsns are 1..=last with no gaps.
            for (i, r) in replay.records.iter().enumerate() {
                assert_eq!(r.lsn, i as u64 + 1);
            }
        }
    }

    #[test]
    fn mid_flush_crash_cuts_at_a_record_boundary_prefix() {
        // Crash at the nth append (per n): replay must recover a clean
        // prefix of what was acked durable (nothing was, so any prefix
        // of the attempted records is legal — but it must be a *prefix*,
        // never a gap, and never a panic).
        for n in 1..12u64 {
            let fs = SimFs::with_faults(FaultPlan {
                crash_after_append: Some((n, n * 31 + 7)),
                ..FaultPlan::default()
            });
            let mut w = SegmentWriter::new(cfg(&fs), 1);
            for lsn in 1..=8 {
                w.buffer(&rec(lsn, lsn, lsn as i64));
            }
            let _ = w.flush(); // dies somewhere inside
            let replay = read_log(&cfg(&fs)).unwrap();
            for (i, r) in replay.records.iter().enumerate() {
                assert_eq!(r.lsn, i as u64 + 1, "crash at append {n}");
            }
        }
    }

    #[test]
    fn bit_flips_at_every_offset_yield_exact_clean_prefix() {
        // Satellite: flip single bits and whole bytes at EVERY offset of
        // a small multi-segment log; recovery must return the exact
        // record prefix preceding the corrupted record — no panic, no
        // partial or resynchronized record.
        let fs = SimFs::new();
        write_records(&fs, 12);
        let clean = read_log(&cfg(&fs)).unwrap();
        assert_eq!(clean.records.len(), 12);
        let names = fs.list_dir(Path::new("/wal")).unwrap();
        // Record where each (file, record) starts so we can compute the
        // expected surviving prefix for any corrupted offset.
        let mut originals = Vec::new();
        for name in &names {
            originals.push((
                name.clone(),
                fs.snapshot(&Path::new("/wal").join(name)).unwrap(),
            ));
        }
        for (file_idx, (name, bytes)) in originals.iter().enumerate() {
            for offset in 0..bytes.len() {
                for flip in [1u8 << (offset % 8), 0xff] {
                    let mut corrupt = bytes.clone();
                    corrupt[offset] ^= flip;
                    let fs2 = SimFs::new();
                    for (j, (n2, b2)) in originals.iter().enumerate() {
                        let content = if j == file_idx {
                            corrupt.clone()
                        } else {
                            b2.clone()
                        };
                        fs2.install(&Path::new("/wal").join(n2), content);
                    }
                    let replay = read_log(&cfg(&fs2)).unwrap();
                    // The replayed records must be an exact prefix of the
                    // clean log…
                    assert!(replay.records.len() <= clean.records.len());
                    for (a, b) in replay.records.iter().zip(clean.records.iter()) {
                        assert_eq!(a.lsn, b.lsn, "{name} offset {offset}");
                        assert_eq!(a.txn, b.txn, "{name} offset {offset}");
                    }
                    // …and the corruption must not be *silently absorbed*:
                    // every record at or after the flipped byte's position
                    // in this file must be gone (flips in the len/crc/
                    // payload of record k kill k and everything after).
                    assert!(
                        replay.torn.is_some(),
                        "{name} offset {offset} flip {flip:#x}: corruption undetected"
                    );
                }
            }
        }
    }

    #[test]
    fn truncate_below_removes_only_fully_covered_sealed_segments() {
        let fs = SimFs::new();
        let mut w = write_records(&fs, 30);
        let sealed_before = w.sealed_segments().len();
        assert!(sealed_before >= 2);
        let boundary = w.sealed_segments()[1].last_lsn + 1;
        let removed = w.truncate_below(boundary);
        assert_eq!(removed, 2);
        // Replay still yields a contiguous suffix ending at 30.
        let replay = read_log(&cfg(&fs)).unwrap();
        assert!(replay.torn.is_none());
        assert_eq!(replay.last_lsn, 30);
        let first = replay.records.first().unwrap().lsn;
        assert!(first <= boundary);
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r.lsn, first + i as u64);
        }
    }

    #[test]
    fn create_failure_is_retryable_and_preserves_pending() {
        let fs = SimFs::with_faults(FaultPlan {
            fail_create: Some(1),
            ..FaultPlan::default()
        });
        let mut w = SegmentWriter::new(cfg(&fs), 1);
        w.buffer(&rec(1, 1, 1));
        let err = w.flush().unwrap_err();
        assert!(err.retryable);
        assert!(w.poisoned().is_none());
        // The fault was one-shot: the retry succeeds with nothing lost.
        w.flush().expect("retry after transient create failure");
        let replay = read_log(&cfg(&fs)).unwrap();
        assert_eq!(replay.last_lsn, 1);
    }

    #[test]
    fn short_write_poisons_the_writer() {
        let fs = SimFs::with_faults(FaultPlan {
            short_write: Some((3, 5)), // header is append #1; record #2 ok; record #3 torn
            ..FaultPlan::default()
        });
        // Default (large) segment size: both records stay in segment 1,
        // so append #3 is the second *record*, not a rotated header.
        let mut w = SegmentWriter::new(WalConfig::sim("/wal", fs.clone()), 1);
        for lsn in 1..=2 {
            w.buffer(&rec(lsn, lsn, lsn as i64));
        }
        let err = w.flush().unwrap_err();
        assert!(!err.retryable);
        assert!(w.poisoned().is_some());
        let again = w.flush().unwrap_err();
        assert!(!again.retryable, "poisoning is sticky");
        // Replay after the torn write: the intact record before the torn
        // one survives (the sync that would promote it never ran, so
        // after a crash even that may be gone — both are clean prefixes).
        fs.crash(3);
        let replay = read_log(&cfg(&fs)).unwrap();
        assert!(replay.records.len() <= 1);
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r.lsn, i as u64 + 1);
        }
    }

    #[test]
    fn fsync_failure_poisons_the_writer() {
        let fs = SimFs::with_faults(FaultPlan {
            fail_sync: Some(1),
            ..FaultPlan::default()
        });
        let mut w = SegmentWriter::new(cfg(&fs), 1);
        w.buffer(&rec(1, 1, 1));
        let err = w.flush().unwrap_err();
        assert!(!err.retryable);
        assert!(w.poisoned().is_some());
    }
}
