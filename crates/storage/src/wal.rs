//! Write-ahead log.
//!
//! Both execution engines funnel every data modification through the log
//! manager: a record is appended *before* the heap/index change is made
//! (WAL rule) and the commit record is forced at commit time. Records are
//! logical (table + key + before/after images) which keeps redo/undo simple
//! and independent of physical record placement; this mirrors the level at
//! which the DORA paper reasons about logging (it reuses Shore-MT's log).
//!
//! Record version headers ([`crate::version`]) are deliberately **not**
//! logged: replay goes through the raw operations of [`crate::db`], which
//! mint fresh stable (even, stamp-0) headers, so a recovered database
//! serves validated reads immediately.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::tuple;
use crate::types::{Key, Lsn, TableId, TxnId, Value};

/// The operation a log record describes.
#[derive(Debug, Clone, PartialEq)]
pub enum LogPayload {
    /// Transaction start.
    Begin,
    /// Transaction commit (forces the log).
    Commit,
    /// Transaction abort (after undo has been applied).
    Abort,
    /// A row insert.
    Insert {
        /// Table the row belongs to.
        table: TableId,
        /// Primary key of the row.
        key: Key,
        /// Full row image.
        tuple: Vec<Value>,
    },
    /// A row update.
    Update {
        /// Table the row belongs to.
        table: TableId,
        /// Primary key of the row.
        key: Key,
        /// Row image before the update (undo).
        before: Vec<Value>,
        /// Row image after the update (redo).
        after: Vec<Value>,
    },
    /// A row delete.
    Delete {
        /// Table the row belongs to.
        table: TableId,
        /// Primary key of the row.
        key: Key,
        /// Row image before the delete (undo).
        before: Vec<Value>,
    },
    /// A fuzzy checkpoint listing transactions active at checkpoint time.
    Checkpoint {
        /// Transactions active when the checkpoint was taken.
        active: Vec<TxnId>,
    },
}

/// A single log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Log sequence number (monotonically increasing).
    pub lsn: Lsn,
    /// Transaction that produced the record.
    pub txn: TxnId,
    /// Logical payload.
    pub payload: LogPayload,
}

/// Counters describing log activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LogStatsSnapshot {
    /// Records appended.
    pub appended: u64,
    /// Explicit force (flush) calls.
    pub forces: u64,
    /// Highest LSN made durable.
    pub flushed_lsn: u64,
}

/// The log manager: an append-only, totally ordered record stream.
pub struct LogManager {
    records: Mutex<Vec<LogRecord>>,
    next_lsn: AtomicU64,
    flushed_lsn: AtomicU64,
    forces: AtomicU64,
}

impl Default for LogManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LogManager {
    /// Creates an empty log.
    pub fn new() -> Self {
        LogManager {
            records: Mutex::new(Vec::new()),
            next_lsn: AtomicU64::new(1),
            flushed_lsn: AtomicU64::new(0),
            forces: AtomicU64::new(0),
        }
    }

    /// Appends a record, returning its LSN.
    pub fn append(&self, txn: TxnId, payload: LogPayload) -> Lsn {
        let mut records = self.records.lock();
        let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
        records.push(LogRecord { lsn, txn, payload });
        lsn
    }

    /// Forces the log up to `lsn` (group commit: everything up to the
    /// highest appended LSN becomes durable).
    pub fn force(&self, lsn: Lsn) {
        self.forces.fetch_add(1, Ordering::Relaxed);
        self.flushed_lsn.fetch_max(lsn, Ordering::Relaxed);
    }

    /// Highest durable LSN.
    pub fn flushed_lsn(&self) -> Lsn {
        self.flushed_lsn.load(Ordering::Relaxed)
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when no record has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of all records in LSN order (used by recovery and tests).
    pub fn records(&self) -> Vec<LogRecord> {
        self.records.lock().clone()
    }

    /// Log activity counters.
    pub fn stats(&self) -> LogStatsSnapshot {
        LogStatsSnapshot {
            appended: self.next_lsn.load(Ordering::Relaxed) - 1,
            forces: self.forces.load(Ordering::Relaxed),
            flushed_lsn: self.flushed_lsn.load(Ordering::Relaxed),
        }
    }

    /// Serializes the whole log to bytes (for durability simulation and the
    /// recovery round-trip tests).
    pub fn encode(&self) -> Vec<u8> {
        let records = self.records.lock();
        let mut out = Vec::new();
        out.extend_from_slice(&(records.len() as u64).to_le_bytes());
        for r in records.iter() {
            encode_record(r, &mut out);
        }
        out
    }

    /// Reconstructs a log from bytes produced by [`LogManager::encode`].
    pub fn decode(bytes: &[u8]) -> StorageResult<Vec<LogRecord>> {
        let mut pos = 0usize;
        let count = read_u64(bytes, &mut pos)? as usize;
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            records.push(decode_record(bytes, &mut pos)?);
        }
        Ok(records)
    }
}

// --- binary encoding -----------------------------------------------------

const TAG_BEGIN: u8 = 0;
const TAG_COMMIT: u8 = 1;
const TAG_ABORT: u8 = 2;
const TAG_INSERT: u8 = 3;
const TAG_UPDATE: u8 = 4;
const TAG_DELETE: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;

fn put_values(vals: &[Value], out: &mut Vec<u8>) {
    let encoded = tuple::encode(vals);
    out.extend_from_slice(&(encoded.len() as u32).to_le_bytes());
    out.extend_from_slice(&encoded);
}

fn encode_record(r: &LogRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&r.lsn.to_le_bytes());
    out.extend_from_slice(&r.txn.to_le_bytes());
    match &r.payload {
        LogPayload::Begin => out.push(TAG_BEGIN),
        LogPayload::Commit => out.push(TAG_COMMIT),
        LogPayload::Abort => out.push(TAG_ABORT),
        LogPayload::Insert { table, key, tuple } => {
            out.push(TAG_INSERT);
            out.extend_from_slice(&table.to_le_bytes());
            put_values(key, out);
            put_values(tuple, out);
        }
        LogPayload::Update {
            table,
            key,
            before,
            after,
        } => {
            out.push(TAG_UPDATE);
            out.extend_from_slice(&table.to_le_bytes());
            put_values(key, out);
            put_values(before, out);
            put_values(after, out);
        }
        LogPayload::Delete { table, key, before } => {
            out.push(TAG_DELETE);
            out.extend_from_slice(&table.to_le_bytes());
            put_values(key, out);
            put_values(before, out);
        }
        LogPayload::Checkpoint { active } => {
            out.push(TAG_CHECKPOINT);
            out.extend_from_slice(&(active.len() as u32).to_le_bytes());
            for t in active {
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
    }
}

fn read_exact<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> StorageResult<&'a [u8]> {
    if *pos + n > bytes.len() {
        return Err(StorageError::LogCorrupt("truncated log".into()));
    }
    let s = &bytes[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> StorageResult<u64> {
    let s = read_exact(bytes, pos, 8)?;
    Ok(u64::from_le_bytes(s.try_into().expect("length checked")))
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> StorageResult<u32> {
    let s = read_exact(bytes, pos, 4)?;
    Ok(u32::from_le_bytes(s.try_into().expect("length checked")))
}

fn read_u8(bytes: &[u8], pos: &mut usize) -> StorageResult<u8> {
    Ok(read_exact(bytes, pos, 1)?[0])
}

fn get_values(bytes: &[u8], pos: &mut usize) -> StorageResult<Vec<Value>> {
    let len = read_u32(bytes, pos)? as usize;
    let raw = read_exact(bytes, pos, len)?;
    tuple::decode(raw)
}

fn decode_record(bytes: &[u8], pos: &mut usize) -> StorageResult<LogRecord> {
    let lsn = read_u64(bytes, pos)?;
    let txn = read_u64(bytes, pos)?;
    let tag = read_u8(bytes, pos)?;
    let payload = match tag {
        TAG_BEGIN => LogPayload::Begin,
        TAG_COMMIT => LogPayload::Commit,
        TAG_ABORT => LogPayload::Abort,
        TAG_INSERT => {
            let table = read_u32(bytes, pos)?;
            let key = get_values(bytes, pos)?;
            let tuple = get_values(bytes, pos)?;
            LogPayload::Insert { table, key, tuple }
        }
        TAG_UPDATE => {
            let table = read_u32(bytes, pos)?;
            let key = get_values(bytes, pos)?;
            let before = get_values(bytes, pos)?;
            let after = get_values(bytes, pos)?;
            LogPayload::Update {
                table,
                key,
                before,
                after,
            }
        }
        TAG_DELETE => {
            let table = read_u32(bytes, pos)?;
            let key = get_values(bytes, pos)?;
            let before = get_values(bytes, pos)?;
            LogPayload::Delete { table, key, before }
        }
        TAG_CHECKPOINT => {
            let n = read_u32(bytes, pos)? as usize;
            let mut active = Vec::with_capacity(n);
            for _ in 0..n {
                active.push(read_u64(bytes, pos)?);
            }
            LogPayload::Checkpoint { active }
        }
        other => {
            return Err(StorageError::LogCorrupt(format!(
                "unknown log record tag {other}"
            )))
        }
    };
    Ok(LogRecord { lsn, txn, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogPayload> {
        vec![
            LogPayload::Begin,
            LogPayload::Insert {
                table: 1,
                key: vec![Value::BigInt(5)],
                tuple: vec![Value::BigInt(5), Value::Varchar("row".into())],
            },
            LogPayload::Update {
                table: 1,
                key: vec![Value::BigInt(5)],
                before: vec![Value::BigInt(5), Value::Varchar("row".into())],
                after: vec![Value::BigInt(5), Value::Varchar("new".into())],
            },
            LogPayload::Delete {
                table: 1,
                key: vec![Value::BigInt(5)],
                before: vec![Value::BigInt(5), Value::Varchar("new".into())],
            },
            LogPayload::Checkpoint {
                active: vec![1, 2, 3],
            },
            LogPayload::Commit,
            LogPayload::Abort,
        ]
    }

    #[test]
    fn lsns_are_monotonic() {
        let log = LogManager::new();
        let a = log.append(1, LogPayload::Begin);
        let b = log.append(1, LogPayload::Commit);
        assert!(b > a);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn force_advances_flushed_lsn() {
        let log = LogManager::new();
        let lsn = log.append(1, LogPayload::Begin);
        assert_eq!(log.flushed_lsn(), 0);
        log.force(lsn);
        assert_eq!(log.flushed_lsn(), lsn);
        // Forcing an older LSN never regresses durability.
        log.force(0);
        assert_eq!(log.flushed_lsn(), lsn);
        assert_eq!(log.stats().forces, 2);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let log = LogManager::new();
        for (i, p) in sample_records().into_iter().enumerate() {
            log.append(i as TxnId, p);
        }
        let bytes = log.encode();
        let decoded = LogManager::decode(&bytes).unwrap();
        assert_eq!(decoded, log.records());
    }

    #[test]
    fn corrupt_log_is_rejected() {
        let log = LogManager::new();
        log.append(1, LogPayload::Begin);
        log.append(
            1,
            LogPayload::Insert {
                table: 3,
                key: vec![Value::Int(1)],
                tuple: vec![Value::Int(1), Value::Bool(true)],
            },
        );
        let bytes = log.encode();
        assert!(LogManager::decode(&bytes[..bytes.len() - 2]).is_err());
        let mut bad = bytes.clone();
        bad[16] = 250; // corrupt a payload tag
        assert!(LogManager::decode(&bad).is_err() || LogManager::decode(&bad).is_ok());
    }

    #[test]
    fn concurrent_appends_get_unique_lsns() {
        use std::sync::Arc;
        let log = Arc::new(LogManager::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                (0..200)
                    .map(|_| log.append(t, LogPayload::Begin))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Lsn> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1600);
        assert_eq!(log.len(), 1600);
        // Records are stored in LSN order.
        let recs = log.records();
        assert!(recs.windows(2).all(|w| w[0].lsn < w[1].lsn));
    }
}
