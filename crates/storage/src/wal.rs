//! Write-ahead log.
//!
//! Both execution engines funnel every data modification through the log
//! manager: a record is appended *before* the heap/index change is made
//! (WAL rule) and the commit record is forced at commit time. Records are
//! logical (table + key + before/after images) which keeps redo/undo simple
//! and independent of physical record placement; this mirrors the level at
//! which the DORA paper reasons about logging (it reuses Shore-MT's log).
//!
//! # The consolidation log buffer
//!
//! Appends are **lock-free**: the old `Mutex<Vec<LogRecord>>` — a global
//! critical section every transaction crossed once per begin/write/commit
//! — is gone. In its place sits a consolidation-style buffer:
//!
//! * One `fetch_add` on `next_lsn` reserves the record's LSN **and** its
//!   slot in a bounded ring (`slot = (lsn - 1) & mask`) in the same
//!   atomic step.
//! * The appender serializes its record into the slot privately, then
//!   **publishes** it with one `Release` store of the slot's sequence
//!   word. Appenders never touch a mutex and never wait on each other —
//!   the only stall is wrap-around back-pressure (the ring slot's
//!   previous occupant, `lsn - capacity`, has not been drained yet), and
//!   a stalled appender *helps* drain instead of spinning idle.
//! * `force(lsn)` is **group commit**: the caller whose watermark is
//!   already covered returns immediately (it rode a concurrent flush);
//!   otherwise one thread claims the flusher role, drains the contiguous
//!   published prefix of the ring into the durable store — waiting only
//!   for straggler appenders *below* `lsn` that reserved but have not yet
//!   published — and advances the `flushed_lsn` watermark. Concurrent
//!   committers wait for the watermark instead of queueing on a record
//!   mutex, so a commit pays **at most one contended wait**.
//!
//! # Memory ordering
//!
//! The watermark is the durability contract: a reader that observes
//! `flushed_lsn() >= L` must also observe every record with LSN `<= L`.
//! Three edges make that hold (no `Relaxed` shortcuts — the old
//! implementation's `Relaxed` `fetch_max`/`load` pair provided no such
//! guarantee):
//!
//! 1. slot publish: record write → `seq.store(Release)`; the drainer's
//!    `seq.load(Acquire)` therefore sees the full record.
//! 2. drain: records moved into the durable store →
//!    `drained_lsn.store(Release)`.
//! 3. watermark: everything above → `flushed_lsn.store(Release)`;
//!    `flushed_lsn()` reads with `Acquire`, closing the chain
//!    (`wal::tests::watermark_never_covers_unpublished_records` hammers
//!    exactly this edge; a loom model would check the same three edges).
//!
//! Recovery and checkpoint iterate the **published prefix** in LSN order
//! ([`LogManager::records`] / [`LogManager::encode`]), so replay semantics
//! are byte-identical to the mutex-era log.
//!
//! Record version headers ([`crate::version`]) are deliberately **not**
//! logged: replay goes through the raw operations of [`crate::db`], which
//! mint fresh stable (even, stamp-0) headers, so a recovered database
//! serves validated reads immediately.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::tuple;
use crate::types::{Key, Lsn, TableId, TxnId, Value};

/// Default ring capacity (slots). Power of two; large enough that the
/// wrap-around back-pressure path is essentially never taken while group
/// commit keeps draining, small enough to stay cache-friendly.
const DEFAULT_BUFFER_SLOTS: usize = 1024;

/// The operation a log record describes.
#[derive(Debug, Clone, PartialEq)]
pub enum LogPayload {
    /// Transaction start.
    Begin,
    /// Transaction commit (forces the log).
    Commit,
    /// Transaction abort (after undo has been applied).
    Abort,
    /// A row insert.
    Insert {
        /// Table the row belongs to.
        table: TableId,
        /// Primary key of the row.
        key: Key,
        /// Full row image.
        tuple: Vec<Value>,
    },
    /// A row update.
    Update {
        /// Table the row belongs to.
        table: TableId,
        /// Primary key of the row.
        key: Key,
        /// Row image before the update (undo).
        before: Vec<Value>,
        /// Row image after the update (redo).
        after: Vec<Value>,
    },
    /// A row delete.
    Delete {
        /// Table the row belongs to.
        table: TableId,
        /// Primary key of the row.
        key: Key,
        /// Row image before the delete (undo).
        before: Vec<Value>,
    },
    /// A fuzzy checkpoint marker. `base_lsn` is the highest LSN reserved
    /// when the checkpoint's snapshot scan began (every committed write
    /// at or below it is reflected in the snapshot image); `keep_from`
    /// is the replay floor — `min(base_lsn + 1, first LSN of the oldest
    /// transaction active at scan start)` — below which segments may be
    /// truncated once the checkpoint is durable.
    Checkpoint {
        /// Highest reserved LSN when the snapshot scan began.
        base_lsn: Lsn,
        /// Truncation boundary: recovery needs records `>= keep_from`.
        keep_from: Lsn,
        /// Transactions active when the checkpoint was taken.
        active: Vec<TxnId>,
    },
}

/// A single log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Log sequence number (monotonically increasing).
    pub lsn: Lsn,
    /// Transaction that produced the record.
    pub txn: TxnId,
    /// Logical payload.
    pub payload: LogPayload,
}

/// Counters describing log activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LogStatsSnapshot {
    /// Records appended.
    pub appended: u64,
    /// Explicit force (flush) calls.
    pub forces: u64,
    /// Highest LSN made durable.
    pub flushed_lsn: u64,
    /// Group-commit drains actually performed (forces that claimed the
    /// flusher role instead of riding a concurrent flush).
    pub group_commits: u64,
    /// Forces that found their LSN uncovered *and* the flusher busy, and
    /// had to wait for the concurrent group commit. Counted once per
    /// force — this is the "≤ 1 contended wait per commit" the
    /// consolidation buffer guarantees.
    pub commit_waits: u64,
    /// Appends stalled by ring wrap-around (the slot's previous occupant
    /// not yet drained). Back-pressure, not contention: the appender
    /// helps drain while it waits.
    pub append_waits: u64,
    /// Drain stalls on a straggler — an appender that reserved an LSN
    /// below the force target but had not yet published its slot.
    /// Counted once per stalled slot.
    pub straggler_waits: u64,
    /// Log I/O failures observed by `force` (both retryable segment-
    /// rotation failures and the fatal write/fsync failures that poison
    /// the log). Zero when no file backing is attached.
    pub io_errors: u64,
}

impl LogStatsSnapshot {
    /// Total contended waits on the log path (the quantity the
    /// `critical_sections` bench reports per transaction as `log_waits`).
    pub fn waits(&self) -> u64 {
        self.commit_waits + self.append_waits + self.straggler_waits
    }
}

/// One ring slot. `seq` is the classic bounded-MPSC turn word over LSN
/// positions (`pos = lsn - 1`):
///
/// * `seq == pos`       → the slot is free for the appender holding `pos`;
/// * `seq == pos + 1`   → the record for `pos` is published, drainable;
/// * `seq == pos + cap` → drained; free for the *next* round's appender.
///
/// The appender writes `rec` only while it exclusively owns the slot
/// (`seq == pos`, and `pos` was handed to exactly one thread by the
/// `next_lsn` fetch-add); the drainer reads it only at `seq == pos + 1`
/// under the flusher mutex. That hand-off is what makes the `UnsafeCell`
/// sound.
struct LogSlot {
    seq: AtomicU64,
    rec: UnsafeCell<Option<LogRecord>>,
}

// SAFETY: `rec` is accessed exclusively — by the one appender that owns
// the slot's current turn before the `seq` publish (Release), and by the
// drainer (serialized by the flusher mutex) after observing the publish
// (Acquire). See the `LogSlot` protocol above.
unsafe impl Sync for LogSlot {}

/// The log manager: an append-only, totally ordered record stream behind
/// a lock-free consolidation buffer (see the module docs).
pub struct LogManager {
    /// Reserves LSN and ring slot in one fetch-add.
    next_lsn: AtomicU64,
    slots: Box<[LogSlot]>,
    mask: u64,
    /// Records `1..=drained_lsn` have been moved to `durable`
    /// (contiguous). Written only by the drainer, `Release` after the
    /// move; read `Acquire`.
    drained_lsn: AtomicU64,
    /// Group-commit watermark: records `1..=flushed_lsn` are durable.
    /// `Release` store after the drain, `Acquire` load — see the module
    /// ordering notes.
    flushed_lsn: AtomicU64,
    /// Drained records in LSN order plus the optional file-backed segment
    /// writer. Doubles as the flusher claim: whoever holds it is *the*
    /// group committer. Appenders never take it on their hot path.
    durable: Mutex<DurableLog>,
    /// True once a file-backed segment writer is attached. Lets hot paths
    /// skip durability-only work (CLR logging) without taking the
    /// flusher mutex.
    file_backed: std::sync::atomic::AtomicBool,
    /// Set when a fatal log I/O failure occurred: every subsequent
    /// `force` fails with [`StorageError::LogPoisoned`] instead of
    /// silently retrying over possibly-dropped pages.
    poisoned: std::sync::atomic::AtomicBool,
    forces: AtomicU64,
    group_commits: AtomicU64,
    commit_waits: AtomicU64,
    append_waits: AtomicU64,
    straggler_waits: AtomicU64,
    io_errors: AtomicU64,
}

/// The durable side of the log, guarded by the flusher mutex: the
/// in-memory record mirror (recovery tests and `records()` read it) and,
/// when durability is attached, the on-disk segment writer. Draining
/// buffers records into both; file I/O happens only in `force`.
#[derive(Default)]
struct DurableLog {
    records: Vec<LogRecord>,
    writer: Option<crate::segment::SegmentWriter>,
}

impl Default for LogManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LogManager {
    /// Creates an empty log with the default buffer capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_BUFFER_SLOTS)
    }

    /// Creates an empty log whose ring holds `capacity` in-flight records
    /// (rounded up to a power of two). Small capacities force the
    /// wrap-around path and are used by the buffer tests.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(2);
        LogManager {
            next_lsn: AtomicU64::new(1),
            slots: (0..capacity as u64)
                .map(|i| LogSlot {
                    seq: AtomicU64::new(i),
                    rec: UnsafeCell::new(None),
                })
                .collect(),
            mask: capacity as u64 - 1,
            drained_lsn: AtomicU64::new(0),
            flushed_lsn: AtomicU64::new(0),
            durable: Mutex::new(DurableLog::default()),
            file_backed: std::sync::atomic::AtomicBool::new(false),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            forces: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            commit_waits: AtomicU64::new(0),
            append_waits: AtomicU64::new(0),
            straggler_waits: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    fn capacity(&self) -> u64 {
        self.mask + 1
    }

    /// Appends a record, returning its LSN. Lock-free: one fetch-add
    /// reserves LSN and slot, one Release store publishes; the only stall
    /// is ring wrap-around (back-pressure), during which the appender
    /// helps the drain along.
    pub fn append(&self, txn: TxnId, payload: LogPayload) -> Lsn {
        let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
        let pos = lsn - 1;
        let slot = &self.slots[(pos & self.mask) as usize];
        // Wait for our turn: the slot's previous occupant (lsn - capacity)
        // must have been drained. Appenders with pos < capacity never wait.
        let mut stalled = false;
        while slot.seq.load(Ordering::Acquire) != pos {
            if !stalled {
                stalled = true;
                self.append_waits.fetch_add(1, Ordering::Relaxed);
            }
            // Help: drain whatever contiguous published prefix exists (the
            // occupant blocking us is below `pos`, so a successful drain
            // reaches it). If another thread holds the flusher we just
            // yield — it is draining on our behalf.
            if let Some(mut durable) = self.durable.try_lock() {
                self.drain_published(&mut durable, 0);
            }
            std::thread::yield_now();
        }
        // SAFETY: `seq == pos` and the fetch-add handed `pos` to this
        // thread alone — exclusive access until the publish below.
        unsafe {
            *slot.rec.get() = Some(LogRecord { lsn, txn, payload });
        }
        // Publish: pairs with the drainer's Acquire load of `seq` (module
        // ordering edge 1).
        slot.seq.store(pos + 1, Ordering::Release);
        lsn
    }

    /// Forces the log up to `lsn` — group commit. Everything published
    /// below the claimed drain point becomes durable in one pass; callers
    /// whose LSN is already covered return without touching any lock, and
    /// callers racing an in-flight flush wait for its watermark (at most
    /// one contended wait) instead of queueing on a record mutex.
    ///
    /// With a file-backed writer attached, "durable" means **fsynced**:
    /// the flusher drains the published prefix into the segment writer
    /// and flushes it before advancing `flushed_lsn`. Failure policy:
    ///
    /// * a retryable failure (segment rotation wrote nothing) returns
    ///   [`StorageError::LogIo`]; the drained records stay buffered and a
    ///   later force may succeed;
    /// * a fatal failure (short/torn write mid-record, failed fsync over
    ///   possibly-dropped pages) **poisons the log**: this and every
    ///   subsequent force fail with [`StorageError::LogPoisoned`].
    ///   Appends and reads keep working, so read-only traffic and abort
    ///   paths are unaffected.
    pub fn force(&self, lsn: Lsn) -> StorageResult<()> {
        self.forces.fetch_add(1, Ordering::Relaxed);
        // Clamp to the reserved range: forcing an LSN nobody appended
        // must not wait for a record that will never exist.
        let lsn = lsn.min(self.next_lsn.load(Ordering::Acquire) - 1);
        let mut waited = false;
        // Ordering edge 3 (module docs): Acquire here pairs with the
        // Release watermark store, so a covered caller also sees every
        // record the watermark covers.
        while self.flushed_lsn.load(Ordering::Acquire) < lsn {
            if self.poisoned.load(Ordering::Acquire) {
                return Err(StorageError::LogPoisoned(
                    "log poisoned by an earlier I/O failure".into(),
                ));
            }
            if let Some(mut durable) = self.durable.try_lock() {
                // We are the group committer: drain the contiguous
                // published prefix, insisting on every straggler <= lsn.
                self.group_commits.fetch_add(1, Ordering::Relaxed);
                let target = lsn.min(self.next_lsn.load(Ordering::Acquire) - 1);
                let drained = self.drain_published(&mut durable, target);
                if let Some(writer) = durable.writer.as_mut() {
                    if let Err(e) = writer.flush() {
                        self.io_errors.fetch_add(1, Ordering::Relaxed);
                        if !e.retryable {
                            self.poisoned.store(true, Ordering::Release);
                        }
                        return Err(e.into());
                    }
                }
                // Ordering edge 3: Release after the drain's record moves
                // so `flushed_lsn()` readers observe the covered records.
                self.flushed_lsn.fetch_max(drained, Ordering::Release);
            } else {
                // A concurrent group commit is running; ride it.
                if !waited {
                    waited = true;
                    self.commit_waits.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::yield_now();
            }
        }
        Ok(())
    }

    /// Drains the contiguous published prefix of the ring into `durable`,
    /// spinning on stragglers only up to `must_reach` (pass 0 to take
    /// strictly what is already published). Returns the new drained LSN.
    /// Caller holds the flusher mutex. Performs **no file I/O** — records
    /// are buffered into the segment writer and hit disk only in `force`,
    /// which keeps the appenders' help-drain path infallible.
    fn drain_published(&self, durable: &mut DurableLog, must_reach: Lsn) -> Lsn {
        let mut drained = self.drained_lsn.load(Ordering::Acquire);
        loop {
            let lsn = drained + 1;
            if lsn >= self.next_lsn.load(Ordering::Acquire) {
                break; // nothing reserved beyond here
            }
            let pos = lsn - 1;
            let slot = &self.slots[(pos & self.mask) as usize];
            // Ordering edge 1: Acquire pairs with the appender's publish.
            if slot.seq.load(Ordering::Acquire) != pos + 1 {
                if lsn > must_reach {
                    break; // unpublished and we don't need it — stop here
                }
                // Straggler below the force target: it reserved its LSN
                // before us and is mid-publish; the window is tiny.
                self.straggler_waits.fetch_add(1, Ordering::Relaxed);
                while slot.seq.load(Ordering::Acquire) != pos + 1 {
                    std::thread::yield_now();
                }
            }
            // SAFETY: published (`seq == pos + 1`) and not yet drained; the
            // flusher mutex serializes all drains.
            let rec = unsafe { (*slot.rec.get()).take() }.expect("published slot holds a record");
            if let Some(writer) = durable.writer.as_mut() {
                writer.buffer(&rec);
            }
            durable.records.push(rec);
            // Free the slot for the next round's appender.
            slot.seq.store(pos + self.capacity(), Ordering::Release);
            drained = lsn;
            // Ordering edge 2: publish the moved prefix before advancing.
            self.drained_lsn.store(drained, Ordering::Release);
        }
        drained
    }

    /// Highest durable LSN. `Acquire`: a caller observing `L` here is
    /// guaranteed to observe every record with LSN `<= L` through
    /// [`LogManager::records`] / [`LogManager::encode`].
    pub fn flushed_lsn(&self) -> Lsn {
        self.flushed_lsn.load(Ordering::Acquire)
    }

    /// Walks the contiguous published suffix still sitting in the ring
    /// (records past `drained_lsn`), calling `f` on each and stopping at
    /// the first unpublished slot — the one encoding of the
    /// published-prefix invariant that `len` and `records` share. The
    /// caller must hold the flusher mutex so no concurrent drain moves a
    /// record mid-walk.
    fn for_each_undrained_published(&self, mut f: impl FnMut(&LogRecord)) {
        let mut lsn = self.drained_lsn.load(Ordering::Acquire) + 1;
        let reserved = self.next_lsn.load(Ordering::Acquire);
        while lsn < reserved {
            let pos = lsn - 1;
            let slot = &self.slots[(pos & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != pos + 1 {
                break;
            }
            // SAFETY: published and undrained (flusher mutex held), so the
            // record is in place and immutable while `f` reads it.
            f(unsafe { (*slot.rec.get()).as_ref() }.expect("published slot holds a record"));
            lsn += 1;
        }
    }

    /// Number of records in the published prefix.
    pub fn len(&self) -> usize {
        let durable = self.durable.lock();
        let mut n = durable.records.len();
        self.for_each_undrained_published(|_| n += 1);
        n
    }

    /// True when no record has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the published prefix in LSN order (used by recovery and
    /// tests): the drained durable store plus the contiguous published
    /// suffix still sitting in the ring. Holding the flusher mutex keeps
    /// a concurrent drain from moving records mid-copy.
    pub fn records(&self) -> Vec<LogRecord> {
        let durable = self.durable.lock();
        let mut out = durable.records.clone();
        self.for_each_undrained_published(|r| out.push(r.clone()));
        out
    }

    /// Attaches a file-backed segment writer to an otherwise untouched
    /// log and fast-forwards the LSN space past a recovered prefix: the
    /// next append gets `last_lsn + 1`, and `flushed_lsn` starts at
    /// `last_lsn` (those records are already on disk). Errors if any
    /// record was appended to this log first.
    pub fn install_writer(
        &self,
        writer: crate::segment::SegmentWriter,
        last_lsn: Lsn,
    ) -> StorageResult<()> {
        let mut durable = self.durable.lock();
        if self.next_lsn.load(Ordering::Acquire) != 1
            || !durable.records.is_empty()
            || durable.writer.is_some()
        {
            return Err(StorageError::Internal(
                "install_writer requires a fresh, empty log".into(),
            ));
        }
        // Re-seat every ring slot's turn word for the shifted position
        // space: slot `i` must read "free" for the smallest position
        // >= last_lsn (the position of lsn `last_lsn + 1` is `last_lsn`)
        // that maps to it.
        let cap = self.capacity();
        let start_pos = last_lsn;
        for (i, slot) in self.slots.iter().enumerate() {
            let mut p = (start_pos & !self.mask) + i as u64;
            if p < start_pos {
                p += cap;
            }
            slot.seq.store(p, Ordering::Relaxed);
        }
        self.next_lsn.store(last_lsn + 1, Ordering::Release);
        self.drained_lsn.store(last_lsn, Ordering::Release);
        self.flushed_lsn.store(last_lsn, Ordering::Release);
        durable.writer = Some(writer);
        self.file_backed.store(true, Ordering::Release);
        Ok(())
    }

    /// True when a file-backed segment writer is attached (durable mode).
    pub fn is_file_backed(&self) -> bool {
        self.file_backed.load(Ordering::Acquire)
    }

    /// Deletes on-disk segments whose records all lie below `keep_from`
    /// (they are covered by a durable checkpoint). No-op without a
    /// writer. Returns the number of segment files removed.
    pub fn truncate_below(&self, keep_from: Lsn) -> usize {
        let mut durable = self.durable.lock();
        match durable.writer.as_mut() {
            Some(w) => w.truncate_below(keep_from),
            None => 0,
        }
    }

    /// Highest reserved LSN (0 when nothing was appended). This is the
    /// checkpoint's snapshot boundary: every record at or below it was
    /// appended before the call returned.
    pub fn last_reserved_lsn(&self) -> Lsn {
        self.next_lsn.load(Ordering::Acquire) - 1
    }

    /// A lower bound on the LSN the *next* append by this thread will
    /// receive. Used to pre-publish a transaction's `first_lsn` before
    /// its Begin record is appended, closing the race between the
    /// checkpoint's oldest-active computation and an in-flight first
    /// append.
    pub fn next_lsn_hint(&self) -> Lsn {
        self.next_lsn.load(Ordering::Acquire)
    }

    /// Forces the log through `lsn` if it is not already durable.
    /// In-memory mode (no segment writer) treats every published record
    /// as durable, so this is a no-op there — matching `force`.
    fn force_through(&self, lsn: Lsn) -> StorageResult<()> {
        if self.flushed_lsn() >= lsn {
            return Ok(());
        }
        self.force(lsn)
    }

    /// Log activity counters.
    pub fn stats(&self) -> LogStatsSnapshot {
        LogStatsSnapshot {
            appended: self.next_lsn.load(Ordering::Relaxed) - 1,
            forces: self.forces.load(Ordering::Relaxed),
            flushed_lsn: self.flushed_lsn.load(Ordering::Acquire),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            commit_waits: self.commit_waits.load(Ordering::Relaxed),
            append_waits: self.append_waits.load(Ordering::Relaxed),
            straggler_waits: self.straggler_waits.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
        }
    }

    /// Serializes the published prefix to bytes (for durability simulation
    /// and the recovery round-trip tests).
    pub fn encode(&self) -> Vec<u8> {
        let records = self.records();
        let mut out = Vec::new();
        out.extend_from_slice(&(records.len() as u64).to_le_bytes());
        for r in records.iter() {
            encode_record(r, &mut out);
        }
        out
    }

    /// Reconstructs a log from bytes produced by [`LogManager::encode`].
    pub fn decode(bytes: &[u8]) -> StorageResult<Vec<LogRecord>> {
        let mut pos = 0usize;
        let count = read_u64(bytes, &mut pos)? as usize;
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            records.push(decode_record(bytes, &mut pos)?);
        }
        Ok(records)
    }
}

/// The buffer pool's WAL-before-data gate, implemented directly by the
/// log: a dirty page stamped with LSN `L` may reach the page store only
/// once `flushed_lsn() >= L`, and eviction forces the log when it must.
impl crate::buffer::WalGate for LogManager {
    fn current_lsn(&self) -> Lsn {
        self.last_reserved_lsn()
    }

    fn flushed_lsn(&self) -> Lsn {
        LogManager::flushed_lsn(self)
    }

    fn force_lsn(&self, lsn: Lsn) -> StorageResult<()> {
        self.force_through(lsn)
    }
}

// --- binary encoding -----------------------------------------------------

const TAG_BEGIN: u8 = 0;
const TAG_COMMIT: u8 = 1;
const TAG_ABORT: u8 = 2;
const TAG_INSERT: u8 = 3;
const TAG_UPDATE: u8 = 4;
const TAG_DELETE: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;

fn put_values(vals: &[Value], out: &mut Vec<u8>) {
    let encoded = tuple::encode(vals);
    out.extend_from_slice(&(encoded.len() as u32).to_le_bytes());
    out.extend_from_slice(&encoded);
}

pub(crate) fn encode_record(r: &LogRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&r.lsn.to_le_bytes());
    out.extend_from_slice(&r.txn.to_le_bytes());
    match &r.payload {
        LogPayload::Begin => out.push(TAG_BEGIN),
        LogPayload::Commit => out.push(TAG_COMMIT),
        LogPayload::Abort => out.push(TAG_ABORT),
        LogPayload::Insert { table, key, tuple } => {
            out.push(TAG_INSERT);
            out.extend_from_slice(&table.to_le_bytes());
            put_values(key, out);
            put_values(tuple, out);
        }
        LogPayload::Update {
            table,
            key,
            before,
            after,
        } => {
            out.push(TAG_UPDATE);
            out.extend_from_slice(&table.to_le_bytes());
            put_values(key, out);
            put_values(before, out);
            put_values(after, out);
        }
        LogPayload::Delete { table, key, before } => {
            out.push(TAG_DELETE);
            out.extend_from_slice(&table.to_le_bytes());
            put_values(key, out);
            put_values(before, out);
        }
        LogPayload::Checkpoint {
            base_lsn,
            keep_from,
            active,
        } => {
            out.push(TAG_CHECKPOINT);
            out.extend_from_slice(&base_lsn.to_le_bytes());
            out.extend_from_slice(&keep_from.to_le_bytes());
            out.extend_from_slice(&(active.len() as u32).to_le_bytes());
            for t in active {
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
    }
}

fn read_exact<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> StorageResult<&'a [u8]> {
    if *pos + n > bytes.len() {
        return Err(StorageError::LogCorrupt("truncated log".into()));
    }
    let s = &bytes[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> StorageResult<u64> {
    let s = read_exact(bytes, pos, 8)?;
    Ok(u64::from_le_bytes(s.try_into().expect("length checked")))
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> StorageResult<u32> {
    let s = read_exact(bytes, pos, 4)?;
    Ok(u32::from_le_bytes(s.try_into().expect("length checked")))
}

fn read_u8(bytes: &[u8], pos: &mut usize) -> StorageResult<u8> {
    Ok(read_exact(bytes, pos, 1)?[0])
}

fn get_values(bytes: &[u8], pos: &mut usize) -> StorageResult<Vec<Value>> {
    let len = read_u32(bytes, pos)? as usize;
    let raw = read_exact(bytes, pos, len)?;
    tuple::decode(raw)
}

pub(crate) fn decode_record(bytes: &[u8], pos: &mut usize) -> StorageResult<LogRecord> {
    let lsn = read_u64(bytes, pos)?;
    let txn = read_u64(bytes, pos)?;
    let tag = read_u8(bytes, pos)?;
    let payload = match tag {
        TAG_BEGIN => LogPayload::Begin,
        TAG_COMMIT => LogPayload::Commit,
        TAG_ABORT => LogPayload::Abort,
        TAG_INSERT => {
            let table = read_u32(bytes, pos)?;
            let key = get_values(bytes, pos)?;
            let tuple = get_values(bytes, pos)?;
            LogPayload::Insert { table, key, tuple }
        }
        TAG_UPDATE => {
            let table = read_u32(bytes, pos)?;
            let key = get_values(bytes, pos)?;
            let before = get_values(bytes, pos)?;
            let after = get_values(bytes, pos)?;
            LogPayload::Update {
                table,
                key,
                before,
                after,
            }
        }
        TAG_DELETE => {
            let table = read_u32(bytes, pos)?;
            let key = get_values(bytes, pos)?;
            let before = get_values(bytes, pos)?;
            LogPayload::Delete { table, key, before }
        }
        TAG_CHECKPOINT => {
            let base_lsn = read_u64(bytes, pos)?;
            let keep_from = read_u64(bytes, pos)?;
            let n = read_u32(bytes, pos)? as usize;
            let mut active = Vec::with_capacity(n);
            for _ in 0..n {
                active.push(read_u64(bytes, pos)?);
            }
            LogPayload::Checkpoint {
                base_lsn,
                keep_from,
                active,
            }
        }
        other => {
            return Err(StorageError::LogCorrupt(format!(
                "unknown log record tag {other}"
            )))
        }
    };
    Ok(LogRecord { lsn, txn, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_records() -> Vec<LogPayload> {
        vec![
            LogPayload::Begin,
            LogPayload::Insert {
                table: 1,
                key: vec![Value::BigInt(5)],
                tuple: vec![Value::BigInt(5), Value::Varchar("row".into())],
            },
            LogPayload::Update {
                table: 1,
                key: vec![Value::BigInt(5)],
                before: vec![Value::BigInt(5), Value::Varchar("row".into())],
                after: vec![Value::BigInt(5), Value::Varchar("new".into())],
            },
            LogPayload::Delete {
                table: 1,
                key: vec![Value::BigInt(5)],
                before: vec![Value::BigInt(5), Value::Varchar("new".into())],
            },
            LogPayload::Checkpoint {
                base_lsn: 4,
                keep_from: 2,
                active: vec![1, 2, 3],
            },
            LogPayload::Commit,
            LogPayload::Abort,
        ]
    }

    #[test]
    fn lsns_are_monotonic() {
        let log = LogManager::new();
        let a = log.append(1, LogPayload::Begin);
        let b = log.append(1, LogPayload::Commit);
        assert!(b > a);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn force_advances_flushed_lsn() {
        let log = LogManager::new();
        let lsn = log.append(1, LogPayload::Begin);
        assert_eq!(log.flushed_lsn(), 0);
        log.force(lsn).unwrap();
        assert_eq!(log.flushed_lsn(), lsn);
        // Forcing an older LSN never regresses durability.
        log.force(0).unwrap();
        assert_eq!(log.flushed_lsn(), lsn);
        assert_eq!(log.stats().forces, 2);
        assert_eq!(log.stats().group_commits, 1, "the second force rode");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let log = LogManager::new();
        for (i, p) in sample_records().into_iter().enumerate() {
            log.append(i as TxnId, p);
        }
        let bytes = log.encode();
        let decoded = LogManager::decode(&bytes).unwrap();
        assert_eq!(decoded, log.records());
    }

    #[test]
    fn encode_decode_roundtrip_survives_wrap_around() {
        // A ring far smaller than the record count: every slot is reused
        // many times, forcing drains; the encoded log must still hold
        // every record in LSN order.
        let log = LogManager::with_capacity(4);
        let samples = sample_records();
        for round in 0..20u64 {
            for p in &samples {
                log.append(round, p.clone());
            }
        }
        let records = log.records();
        assert_eq!(records.len(), 20 * samples.len());
        assert!(records.windows(2).all(|w| w[0].lsn + 1 == w[1].lsn));
        let decoded = LogManager::decode(&log.encode()).unwrap();
        assert_eq!(decoded, records);
        assert!(log.stats().append_waits > 0, "wrap-around was exercised");
    }

    #[test]
    fn corrupt_log_is_rejected() {
        let log = LogManager::new();
        log.append(1, LogPayload::Begin);
        log.append(
            1,
            LogPayload::Insert {
                table: 3,
                key: vec![Value::Int(1)],
                tuple: vec![Value::Int(1), Value::Bool(true)],
            },
        );
        let bytes = log.encode();
        assert!(LogManager::decode(&bytes[..bytes.len() - 2]).is_err());
        let mut bad = bytes.clone();
        bad[16] = 250; // corrupt a payload tag
        assert!(LogManager::decode(&bad).is_err() || LogManager::decode(&bad).is_ok());
    }

    #[test]
    fn concurrent_appends_get_unique_lsns() {
        let log = Arc::new(LogManager::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                (0..200)
                    .map(|_| log.append(t, LogPayload::Begin))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Lsn> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1600);
        assert_eq!(log.len(), 1600);
        // Records are stored in LSN order.
        let recs = log.records();
        assert!(recs.windows(2).all(|w| w[0].lsn < w[1].lsn));
    }

    #[test]
    fn group_commit_rides_cover_concurrent_committers() {
        // Many committers forcing interleaved LSNs: every force must
        // return with its LSN covered, and contended forces must wait on
        // the watermark (commit_waits), not drain redundantly.
        let log = Arc::new(LogManager::with_capacity(16));
        let mut handles = Vec::new();
        for t in 0..6u64 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    let lsn = log.append(t, LogPayload::Commit);
                    log.force(lsn).unwrap();
                    assert!(log.flushed_lsn() >= lsn, "force returned uncovered");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = log.stats();
        assert_eq!(stats.appended, 1800);
        assert_eq!(stats.flushed_lsn, 1800);
        assert_eq!(stats.forces, 1800);
        // Group commit consolidated: strictly fewer drains than forces
        // would mean rides happened; with 6 threads on one ring some
        // consolidation is certain over 1800 commits.
        assert!(stats.group_commits <= stats.forces);
    }

    #[test]
    fn watermark_never_covers_unpublished_records() {
        // The Release/Acquire contract of the watermark (module ordering
        // notes): any reader observing flushed_lsn() == F must find every
        // record 1..=F present, in order, via records(). Writers hammer
        // append+force while a checker thread continually audits.
        let log = Arc::new(LogManager::with_capacity(8));
        let done = Arc::new(AtomicU64::new(0));
        let mut writers = Vec::new();
        for t in 0..4u64 {
            let log = log.clone();
            writers.push(std::thread::spawn(move || {
                for _ in 0..400 {
                    let lsn = log.append(t, LogPayload::Begin);
                    if lsn.is_multiple_of(3) {
                        log.force(lsn).unwrap();
                    }
                }
            }));
        }
        let checker = {
            let log = log.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut audits = 0u64;
                while done.load(Ordering::Acquire) == 0 {
                    let f = log.flushed_lsn();
                    let recs = log.records();
                    // Every LSN the watermark covers must be present and
                    // contiguous from 1.
                    assert!(
                        recs.len() as u64 >= f,
                        "watermark {f} covers more records than visible ({})",
                        recs.len()
                    );
                    for (i, r) in recs.iter().take(f as usize).enumerate() {
                        assert_eq!(r.lsn, i as u64 + 1, "gap below the watermark");
                    }
                    audits += 1;
                }
                audits
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        done.store(1, Ordering::Release);
        assert!(checker.join().unwrap() > 0);
        let stats = log.stats();
        assert_eq!(stats.appended, 1600);
        assert!(stats.flushed_lsn <= stats.appended);
    }
}

#[cfg(test)]
mod buffer_proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        /// N concurrent appenders over a ring small enough that every
        /// slot wraps many times, with a share of appends immediately
        /// forced: no LSN is lost, duplicated, or reordered; the force
        /// watermark never exceeds the published prefix; and the decoded
        /// log replays byte-identically.
        #[test]
        fn concurrent_appenders_with_wraparound_lose_nothing(
            params in (1usize..5, 2usize..6, 10u64..60, 0u64..100)
        ) {
            let (appenders, cap_log2, per_thread, force_pct) = params;
            let log = Arc::new(LogManager::with_capacity(1 << cap_log2));
            let handles: Vec<_> = (0..appenders as u64)
                .map(|t| {
                    let log = log.clone();
                    std::thread::spawn(move || {
                        for i in 0..per_thread {
                            let lsn = log.append(
                                t + 1,
                                LogPayload::Insert {
                                    table: t as TableId,
                                    key: vec![Value::BigInt(i as i64)],
                                    tuple: vec![Value::BigInt(i as i64)],
                                },
                            );
                            if (lsn.wrapping_mul(0x9e37_79b9)) % 100 < force_pct {
                                log.force(lsn).unwrap();
                                assert!(log.flushed_lsn() >= lsn);
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let total = appenders as u64 * per_thread;
            let records = log.records();
            prop_assert_eq!(records.len() as u64, total);
            // Contiguous LSNs from 1: nothing lost, duplicated, reordered.
            for (i, r) in records.iter().enumerate() {
                prop_assert_eq!(r.lsn, i as u64 + 1);
            }
            let stats = log.stats();
            prop_assert_eq!(stats.appended, total);
            prop_assert!(stats.flushed_lsn <= total);
            // Per-transaction payload order is the thread's append order.
            for t in 1..=appenders as u64 {
                let keys: Vec<i64> = records
                    .iter()
                    .filter(|r| r.txn == t)
                    .map(|r| match &r.payload {
                        LogPayload::Insert { key, .. } => key[0].as_i64().unwrap(),
                        other => panic!("unexpected payload {other:?}"),
                    })
                    .collect();
                let expect: Vec<i64> = (0..per_thread as i64).collect();
                prop_assert_eq!(keys, expect);
            }
            // Decode round-trip: recovery sees the identical stream.
            let decoded = LogManager::decode(&log.encode()).unwrap();
            prop_assert_eq!(decoded, records);
        }
    }
}
