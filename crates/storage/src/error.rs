//! Error types shared by every layer of the storage manager.

use std::fmt;

use crate::types::{Key, TableId, TxnId};

/// Errors produced by the storage manager and surfaced to both execution
/// engines (conventional and DORA).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The requested table does not exist in the catalog.
    UnknownTable(TableId),
    /// The requested table name does not exist in the catalog.
    UnknownTableName(String),
    /// The requested index does not exist.
    UnknownIndex(u32),
    /// A tuple did not match the table schema (arity or type mismatch).
    SchemaMismatch(String),
    /// A unique-key constraint (primary key or unique index) was violated.
    DuplicateKey(String),
    /// The requested record was not found.
    NotFound,
    /// The transaction was chosen as a deadlock victim by the centralized
    /// lock manager and must abort.
    Deadlock(TxnId),
    /// A lock request timed out while waiting in the centralized lock
    /// manager.
    LockTimeout(TxnId),
    /// The transaction was already terminated (committed or aborted).
    TxnNotActive(TxnId),
    /// The transaction was aborted by user or system request.
    Aborted(String),
    /// A validated (versioned) read could not produce a consistent
    /// snapshot within its retry budget: a record's last writer is still
    /// in flight (active, or aborted but not yet rolled back), or its
    /// version word kept moving. Carries the conflicting record so the
    /// DORA executor can park the reader on the key's owning partition.
    ReadUncommitted {
        /// Table of the conflicting record.
        table: TableId,
        /// Primary key of the conflicting record.
        key: Key,
        /// The in-flight transaction stamped on the record.
        writer: TxnId,
    },
    /// A page had no room for the record and the operation cannot proceed.
    PageFull,
    /// The buffer pool could not find an evictable frame.
    BufferPoolFull,
    /// A page-store I/O operation failed (read, write, or checkpoint
    /// fsync of the data file). The page's buffered copy is left intact
    /// and dirty, so the operation may be retried; recovery can always
    /// rebuild lost page writes from the log.
    PageIo(String),
    /// The write-ahead log or recovery subsystem found corrupt data.
    LogCorrupt(String),
    /// A transient log I/O failure: the failed step wrote nothing (e.g.
    /// creating the next segment file returned `ENOSPC`), so the log's
    /// on-disk state is unchanged and the commit may be retried once the
    /// condition clears.
    LogIo(String),
    /// The log hit an I/O failure after bytes may already have reached the
    /// file (a short/torn write mid-record, or a failed fsync over dirty
    /// pages the kernel may have dropped). The log is permanently
    /// poisoned: every subsequent `force` fails with this error rather
    /// than silently retrying over possibly-lost data. Read-only traffic
    /// is unaffected.
    LogPoisoned(String),
    /// The partition worker that owned part of the transaction's data
    /// died (panic, chaos kill) before the transaction could finish, or
    /// the supervisor reaped the transaction while rebuilding the dead
    /// worker's volatile state. The transaction's effects were rolled
    /// back and the partition is being respawned, so the request is
    /// safe — and expected — to retry. Distinct from a generic timeout so
    /// clients can account infrastructure aborts separately from
    /// workload-inherent conflicts.
    WorkerUnavailable(String),
    /// Catch-all for internal invariant violations.
    Internal(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table id {t}"),
            StorageError::UnknownTableName(n) => write!(f, "unknown table '{n}'"),
            StorageError::UnknownIndex(i) => write!(f, "unknown index id {i}"),
            StorageError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StorageError::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            StorageError::NotFound => write!(f, "record not found"),
            StorageError::Deadlock(t) => write!(f, "transaction {t} chosen as deadlock victim"),
            StorageError::LockTimeout(t) => {
                write!(f, "transaction {t} timed out waiting for a lock")
            }
            StorageError::TxnNotActive(t) => write!(f, "transaction {t} is not active"),
            StorageError::Aborted(m) => write!(f, "transaction aborted: {m}"),
            StorageError::ReadUncommitted { table, key, writer } => write!(
                f,
                "validated read of table {table} key {key:?} observed uncommitted \
                 state of transaction {writer}"
            ),
            StorageError::PageFull => write!(f, "page full"),
            StorageError::BufferPoolFull => write!(f, "buffer pool full"),
            StorageError::PageIo(m) => write!(f, "page store I/O failure: {m}"),
            StorageError::LogCorrupt(m) => write!(f, "log corrupt: {m}"),
            StorageError::LogIo(m) => write!(f, "log I/O failure (retryable): {m}"),
            StorageError::LogPoisoned(m) => write!(f, "log poisoned by I/O failure: {m}"),
            StorageError::WorkerUnavailable(m) => {
                write!(f, "partition worker unavailable (retryable): {m}")
            }
            StorageError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience result alias used across the workspace.
pub type StorageResult<T> = Result<T, StorageError>;

impl StorageError {
    /// Returns `true` when the error is one the execution engine should
    /// respond to by aborting and retrying the transaction (deadlock, lock
    /// timeout, a validated read blocked on an in-flight writer, a
    /// transient log I/O failure that wrote nothing, or a partition
    /// worker that died mid-flight and is being respawned), as opposed to
    /// a genuine application error, an application-requested abort, or a
    /// poisoned log (which no retry can fix).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            StorageError::Deadlock(_)
                | StorageError::LockTimeout(_)
                | StorageError::ReadUncommitted { .. }
                | StorageError::LogIo(_)
                | StorageError::WorkerUnavailable(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = StorageError::Deadlock(7);
        assert!(e.to_string().contains("deadlock"));
        let e = StorageError::UnknownTableName("warehouse".into());
        assert!(e.to_string().contains("warehouse"));
    }

    #[test]
    fn retryable_classification() {
        assert!(StorageError::Deadlock(1).is_retryable());
        assert!(StorageError::LockTimeout(1).is_retryable());
        assert!(StorageError::ReadUncommitted {
            table: 1,
            key: vec![],
            writer: 2
        }
        .is_retryable());
        assert!(StorageError::LogIo("segment create: ENOSPC".into()).is_retryable());
        assert!(StorageError::WorkerUnavailable("partition 3 respawning".into()).is_retryable());
        assert!(!StorageError::LogPoisoned("fsync failed".into()).is_retryable());
        assert!(!StorageError::Aborted("x".into()).is_retryable());
        assert!(!StorageError::NotFound.is_retryable());
        assert!(!StorageError::PageFull.is_retryable());
    }
}
