//! ARIES-inspired crash recovery.
//!
//! Recovery rebuilds a database whose schema (catalog) has already been
//! re-established (in a full system the catalog itself is logged; here
//! schemas are code-defined by the workloads, matching how the paper's
//! benchmark kits create them) from two durable artifacts:
//!
//! * an optional **fuzzy checkpoint image** (see [`CheckpointImage`]) — a
//!   committed-only snapshot of every table taken at some base LSN, and
//! * the **retained log suffix** read back by
//!   [`crate::segment::read_log`] (the whole log when no checkpoint has
//!   truncated it).
//!
//! The classic passes run over the logical log records of [`crate::wal`]:
//!
//! 1. **Analysis** — classify transactions as winners (committed) or
//!    losers (in flight at the crash) and find the last checkpoint.
//!    Transaction id 0 is reserved for system records — compensation
//!    (CLR) records written by aborts and checkpoint markers — and is
//!    always treated as a winner.
//! 2. **Redo** — re-apply winner and CLR records in LSN order with
//!    *idempotent upsert* semantics. Idempotency matters because the
//!    retained suffix may begin below the checkpoint's base LSN (segments
//!    are truncated wholesale, never split), so a record may both be in
//!    the snapshot image and replayed on top of it.
//! 3. **Undo** — complete the rollback of losers by applying their
//!    before-images in reverse LSN order. With a fresh, un-checkpointed
//!    log this is a no-op (losers were never redone), but a fuzzy
//!    checkpoint image can be *missing* rows a loser had deleted in
//!    flight (the snapshot scan cannot observe a committed image through
//!    an in-flight delete), and only the loser's logged before-image can
//!    restore them.
//!
//! Truncation safety: a checkpoint's `keep_from` is
//! `min(base_lsn + 1, first LSN of the oldest transaction active at scan
//! start)`, so every loser's full record set — and therefore every
//! before-image the undo pass needs — survives truncation.

use std::collections::HashSet;

use crate::db::Database;
use crate::error::{StorageError, StorageResult};
use crate::segment::{crc32, WalConfig};
use crate::types::{Lsn, TxnId};
use crate::wal::{LogPayload, LogRecord};

/// Transaction id reserved for system records: abort compensation (CLR)
/// records and checkpoint markers. Always replayed as a winner.
pub const SYSTEM_TXN: TxnId = 0;

/// Summary of a recovery run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions found committed in the log.
    pub winners: usize,
    /// Transactions found uncommitted (in-flight at the crash).
    pub losers: usize,
    /// Data records re-applied during redo (winner and CLR records).
    pub redone: usize,
    /// Records skipped because they belonged to losers or to
    /// already-rolled-back (aborted) transactions.
    pub skipped: usize,
    /// Loser before-images applied by the undo pass.
    pub undone: usize,
    /// Rows loaded from the checkpoint image before replay (0 if none).
    pub snapshot_rows: usize,
    /// LSN of the last checkpoint record seen (0 if none).
    pub checkpoint_lsn: u64,
    /// Description of a torn log tail cut during replay (populated by
    /// [`crate::db::Database::recover_and_attach_wal`]; `None` when the
    /// log ended cleanly).
    pub torn_tail: Option<String>,
}

/// Analysis pass: classify transactions as winners or losers.
///
/// Returns `(winners, losers, checkpoint_lsn)`. [`SYSTEM_TXN`] never
/// appears in either set — its records are unconditionally redone.
pub fn analyze(records: &[LogRecord]) -> (HashSet<TxnId>, HashSet<TxnId>, u64) {
    let mut started: HashSet<TxnId> = HashSet::new();
    let mut winners: HashSet<TxnId> = HashSet::new();
    let mut checkpoint_lsn = 0;
    for r in records {
        if r.txn == SYSTEM_TXN {
            if let LogPayload::Checkpoint { active, .. } = &r.payload {
                checkpoint_lsn = r.lsn;
                for t in active {
                    started.insert(*t);
                }
            }
            continue;
        }
        match &r.payload {
            LogPayload::Begin => {
                started.insert(r.txn);
            }
            LogPayload::Commit => {
                winners.insert(r.txn);
            }
            LogPayload::Abort => {
                // Aborted transactions already rolled back before crashing
                // (their compensation records are in the log under
                // `SYSTEM_TXN`); they are neither winners nor pending
                // losers.
                started.remove(&r.txn);
            }
            LogPayload::Checkpoint { active, .. } => {
                checkpoint_lsn = r.lsn;
                for t in active {
                    started.insert(*t);
                }
            }
            _ => {
                started.insert(r.txn);
            }
        }
    }
    let losers: HashSet<TxnId> = started.difference(&winners).copied().collect();
    (winners, losers, checkpoint_lsn)
}

/// Idempotent redo of a full row image: overwrite if present, insert
/// otherwise.
fn upsert_raw(
    db: &Database,
    table: crate::types::TableId,
    tuple: &[crate::types::Value],
) -> StorageResult<()> {
    let schema = db.schema(table)?;
    let key = schema.primary_key_of(tuple);
    if db.update_raw(table, &key, tuple.to_vec())? {
        return Ok(());
    }
    db.insert_raw(table, tuple.to_vec())
}

/// Runs full recovery of `records` into `db` (which must already contain
/// the schema but no data). Returns a report of what was done.
pub fn recover(db: &Database, records: &[LogRecord]) -> StorageResult<RecoveryReport> {
    recover_with_snapshot(db, records, None)
}

/// Runs recovery of a checkpoint image (if any) plus the retained log
/// suffix into `db` (schema present, no data).
///
/// The image is loaded first, then **all** retained winner/CLR records
/// are replayed idempotently on top of it, then losers are undone from
/// their logged before-images.
pub fn recover_with_snapshot(
    db: &Database,
    records: &[LogRecord],
    image: Option<&CheckpointImage>,
) -> StorageResult<RecoveryReport> {
    let (winners, losers, checkpoint_lsn) = analyze(records);
    let mut report = RecoveryReport {
        winners: winners.len(),
        losers: losers.len(),
        checkpoint_lsn,
        ..Default::default()
    };
    // If segments were truncated (retained suffix no longer starts at
    // LSN 1), a checkpoint image is mandatory for completeness.
    if image.is_none() {
        if let Some(first) = records.first() {
            if first.lsn > 1 {
                return Err(StorageError::LogCorrupt(format!(
                    "log starts at lsn {} (truncated by a checkpoint) but no \
                     usable checkpoint image was provided",
                    first.lsn
                )));
            }
        }
    }
    // Snapshot load: committed-only rows captured at the checkpoint base.
    if let Some(img) = image {
        for (name, rows) in &img.tables {
            let table = db.table_id(name)?;
            for row in rows {
                let tuple = crate::tuple::decode(row)?;
                upsert_raw(db, table, &tuple)?;
                report.snapshot_rows += 1;
            }
        }
    }
    // Redo pass: apply winner and system (CLR) changes in LSN order.
    for r in records {
        let is_winner = r.txn == SYSTEM_TXN || winners.contains(&r.txn);
        match &r.payload {
            LogPayload::Insert { table, tuple, .. } => {
                if is_winner {
                    upsert_raw(db, *table, tuple)?;
                    report.redone += 1;
                } else {
                    report.skipped += 1;
                }
            }
            LogPayload::Update {
                table, key, after, ..
            } => {
                if is_winner {
                    // Idempotent logical redo: overwrite with the after
                    // image, inserting it if the row is absent (the
                    // snapshot may predate the row).
                    upsert_raw(db, *table, after)?;
                    let _ = key;
                    report.redone += 1;
                } else {
                    report.skipped += 1;
                }
            }
            LogPayload::Delete { table, key, .. } => {
                if is_winner {
                    db.delete_raw(*table, key)?;
                    report.redone += 1;
                } else {
                    report.skipped += 1;
                }
            }
            _ => {}
        }
    }
    // Undo pass: complete the rollback of losers from their logged
    // before-images, newest first. Idempotent — a loser that got part way
    // through an abort logged CLRs for the same images, and re-applying a
    // before-image that is already in place is a no-op.
    for r in records.iter().rev() {
        if r.txn == SYSTEM_TXN || !losers.contains(&r.txn) {
            continue;
        }
        match &r.payload {
            LogPayload::Insert { table, key, .. } => {
                db.delete_raw(*table, key)?;
                report.undone += 1;
            }
            LogPayload::Update { table, before, .. } => {
                upsert_raw(db, *table, before)?;
                report.undone += 1;
            }
            LogPayload::Delete { table, before, .. } => {
                upsert_raw(db, *table, before)?;
                report.undone += 1;
            }
            _ => {}
        }
    }
    // Recovery rebuilt every page image from the checkpoint + log (it
    // never *reads* data pages), so the page store may be arbitrarily
    // stale. Push the rebuilt pages down now: a subsequent crash before
    // the first checkpoint then recovers over a store no older than this
    // one, and the pool starts clean. At this point nothing has been
    // appended to the fresh log, so pages carry stamp 0 and the flush
    // needs no WAL force.
    db.flush_pages()?;
    Ok(report)
}

// ---------------------------------------------------------------------------
// Checkpoint images
// ---------------------------------------------------------------------------

/// Magic prefix of a checkpoint image file (`"DCKP"` little-endian).
const IMAGE_MAGIC: u32 = 0x504b_4344;
/// Checkpoint image format version.
const IMAGE_VERSION: u32 = 1;

/// A fuzzy checkpoint's durable snapshot: every table's committed rows as
/// observed by a validated scan that began at `base_lsn`.
///
/// File layout (all integers little-endian):
///
/// ```text
/// [magic u32][version u32][crc32 u32]   -- crc over everything after it
/// [base_lsn u64][keep_from u64]
/// [table_count u32]
///   per table: [name_len u32][name bytes][row_count u64]
///     per row: [row_len u32][encoded tuple bytes]
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointImage {
    /// Highest reserved LSN when the snapshot scan began. Every committed
    /// write at or below it is reflected in the rows.
    pub base_lsn: Lsn,
    /// Replay floor recorded at checkpoint time: recovery needs log
    /// records `>= keep_from` (earlier segments may have been truncated).
    pub keep_from: Lsn,
    /// Per-table rows: `(table name, encoded tuples)`.
    pub tables: Vec<(String, Vec<Vec<u8>>)>,
}

impl CheckpointImage {
    /// File name for an image at `base_lsn` (sorts by LSN).
    pub fn file_name(base_lsn: Lsn) -> String {
        format!("chk-{base_lsn:012}.ck")
    }

    /// Serializes the image (with CRC) for writing to disk.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.base_lsn.to_le_bytes());
        body.extend_from_slice(&self.keep_from.to_le_bytes());
        body.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for (name, rows) in &self.tables {
            body.extend_from_slice(&(name.len() as u32).to_le_bytes());
            body.extend_from_slice(name.as_bytes());
            body.extend_from_slice(&(rows.len() as u64).to_le_bytes());
            for row in rows {
                body.extend_from_slice(&(row.len() as u32).to_le_bytes());
                body.extend_from_slice(row);
            }
        }
        let mut out = Vec::with_capacity(12 + body.len());
        out.extend_from_slice(&IMAGE_MAGIC.to_le_bytes());
        out.extend_from_slice(&IMAGE_VERSION.to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes and CRC-checks an image. Returns `None` on any corruption
    /// — a damaged image is simply unusable, never a panic.
    pub fn decode(bytes: &[u8]) -> Option<CheckpointImage> {
        fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
            let s = bytes.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        }
        fn take_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
            Some(u32::from_le_bytes(take(bytes, pos, 4)?.try_into().ok()?))
        }
        fn take_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
            Some(u64::from_le_bytes(take(bytes, pos, 8)?.try_into().ok()?))
        }
        let mut pos = 0;
        if take_u32(bytes, &mut pos)? != IMAGE_MAGIC || take_u32(bytes, &mut pos)? != IMAGE_VERSION
        {
            return None;
        }
        let crc = take_u32(bytes, &mut pos)?;
        let body = &bytes[pos..];
        if crc32(body) != crc {
            return None;
        }
        let base_lsn = take_u64(bytes, &mut pos)?;
        let keep_from = take_u64(bytes, &mut pos)?;
        let table_count = take_u32(bytes, &mut pos)? as usize;
        let mut tables = Vec::with_capacity(table_count.min(1024));
        for _ in 0..table_count {
            let name_len = take_u32(bytes, &mut pos)? as usize;
            let name = String::from_utf8(take(bytes, &mut pos, name_len)?.to_vec()).ok()?;
            let row_count = take_u64(bytes, &mut pos)? as usize;
            let mut rows = Vec::with_capacity(row_count.min(1 << 20));
            for _ in 0..row_count {
                let row_len = take_u32(bytes, &mut pos)? as usize;
                rows.push(take(bytes, &mut pos, row_len)?.to_vec());
            }
            tables.push((name, rows));
        }
        if pos != bytes.len() {
            return None;
        }
        Some(CheckpointImage {
            base_lsn,
            keep_from,
            tables,
        })
    }
}

/// Finds the newest usable checkpoint image in `cfg.dir`: CRC-valid and
/// anchored by a matching [`LogPayload::Checkpoint`] record (same
/// `base_lsn`) in the retained log — truncation only ever happens after
/// the checkpoint record is durable, so whenever an image is *required*
/// its anchor is guaranteed present.
pub fn load_latest_checkpoint_image(
    cfg: &WalConfig,
    records: &[LogRecord],
) -> Option<CheckpointImage> {
    let anchors: HashSet<Lsn> = records
        .iter()
        .filter_map(|r| match &r.payload {
            LogPayload::Checkpoint { base_lsn, .. } => Some(*base_lsn),
            _ => None,
        })
        .collect();
    let mut names: Vec<String> = cfg
        .fs
        .list_dir(&cfg.dir)
        .ok()?
        .into_iter()
        .filter(|n| n.starts_with("chk-") && n.ends_with(".ck"))
        .collect();
    names.sort();
    for name in names.into_iter().rev() {
        let Ok(bytes) = cfg.fs.read(&cfg.dir.join(&name)) else {
            continue;
        };
        if let Some(img) = CheckpointImage::decode(&bytes) {
            if anchors.contains(&img.base_lsn) {
                return Some(img);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Database, LockingPolicy};
    use crate::schema::{ColumnDef, TableSchema};
    use crate::types::{DataType, Value};

    fn schema() -> TableSchema {
        TableSchema::new(
            "items",
            vec![
                ColumnDef::new("id", DataType::BigInt),
                ColumnDef::new("name", DataType::Varchar(32)),
                ColumnDef::new("qty", DataType::Int),
            ],
            vec![0],
        )
    }

    fn fresh_db() -> (Database, u32) {
        let db = Database::default();
        let t = db.create_table(schema()).unwrap();
        (db, t)
    }

    fn item(id: i64, name: &str, qty: i32) -> Vec<Value> {
        vec![
            Value::BigInt(id),
            Value::Varchar(name.into()),
            Value::Int(qty),
        ]
    }

    #[test]
    fn committed_work_survives_recovery() {
        let (db, t) = fresh_db();
        let txn = db.begin();
        for i in 0..20 {
            db.insert(txn, t, item(i, "widget", i as i32), LockingPolicy::Bypass)
                .unwrap();
        }
        db.update(
            txn,
            t,
            &[Value::BigInt(3)],
            &[(2, Value::Int(999))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        db.delete(txn, t, &[Value::BigInt(5)], LockingPolicy::Bypass)
            .unwrap();
        db.commit(txn).unwrap();

        // Simulate a crash: replay the log into a fresh database.
        let records = db.log().records();
        let (db2, t2) = fresh_db();
        let report = recover(&db2, &records).unwrap();
        assert_eq!(report.winners, 1);
        assert_eq!(report.losers, 0);
        assert!(report.redone >= 21);

        assert_eq!(db2.row_count(t2).unwrap(), 19);
        let check = db2.begin();
        assert_eq!(
            db2.get(check, t2, &[Value::BigInt(3)], LockingPolicy::Bypass)
                .unwrap()
                .unwrap()[2],
            Value::Int(999)
        );
        assert!(db2
            .get(check, t2, &[Value::BigInt(5)], LockingPolicy::Bypass)
            .unwrap()
            .is_none());
        db2.commit(check).unwrap();
    }

    #[test]
    fn uncommitted_work_is_discarded() {
        let (db, t) = fresh_db();
        let committed = db.begin();
        db.insert(committed, t, item(1, "kept", 1), LockingPolicy::Bypass)
            .unwrap();
        db.commit(committed).unwrap();

        // This transaction never commits (crash while in flight).
        let in_flight = db.begin();
        db.insert(in_flight, t, item(2, "lost", 2), LockingPolicy::Bypass)
            .unwrap();
        db.update(
            in_flight,
            t,
            &[Value::BigInt(1)],
            &[(2, Value::Int(777))],
            LockingPolicy::Bypass,
        )
        .unwrap();

        let records = db.log().records();
        let (db2, t2) = fresh_db();
        let report = recover(&db2, &records).unwrap();
        assert_eq!(report.winners, 1);
        assert_eq!(report.losers, 1);
        assert!(report.skipped >= 2);

        assert_eq!(db2.row_count(t2).unwrap(), 1);
        let check = db2.begin();
        let row = db2
            .get(check, t2, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(row[2], Value::Int(1), "loser's update must not be redone");
        db2.commit(check).unwrap();
    }

    #[test]
    fn aborted_transactions_are_not_losers() {
        let (db, t) = fresh_db();
        let txn = db.begin();
        db.insert(txn, t, item(1, "rolled-back", 1), LockingPolicy::Bypass)
            .unwrap();
        db.abort(txn).unwrap();

        let records = db.log().records();
        let (winners, losers, _) = analyze(&records);
        assert!(winners.is_empty());
        assert!(losers.is_empty());

        let (db2, t2) = fresh_db();
        recover(&db2, &records).unwrap();
        assert_eq!(db2.row_count(t2).unwrap(), 0);
    }

    #[test]
    fn checkpoint_lsn_is_reported() {
        let (db, t) = fresh_db();
        let txn = db.begin();
        db.insert(txn, t, item(1, "x", 1), LockingPolicy::Bypass)
            .unwrap();
        db.checkpoint().unwrap();
        db.commit(txn).unwrap();
        let records = db.log().records();
        let (db2, _) = fresh_db();
        let report = recover(&db2, &records).unwrap();
        assert!(report.checkpoint_lsn > 0);
    }

    #[test]
    fn recovery_restores_stable_versions_for_validated_reads() {
        // Versioning is not logged — the logical redo path mints fresh
        // stable (even, stamp-0) headers — so a recovered database serves
        // lock-free validated reads immediately, even when the crash
        // happened mid-transaction (the loser's writes are skipped, never
        // leaving an in-progress or uncommitted image behind).
        let (db, t) = fresh_db();
        let committed = db.begin();
        for i in 0..8 {
            db.insert(
                committed,
                t,
                item(i, "stable", i as i32),
                LockingPolicy::Bypass,
            )
            .unwrap();
        }
        db.update(
            committed,
            t,
            &[Value::BigInt(2)],
            &[(2, Value::Int(222))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        db.commit(committed).unwrap();
        // A loser crashes mid-flight with an update in place.
        let loser = db.begin();
        db.update(
            loser,
            t,
            &[Value::BigInt(3)],
            &[(2, Value::Int(-1))],
            LockingPolicy::Bypass,
        )
        .unwrap();

        let records = db.log().records();
        let (db2, t2) = fresh_db();
        recover(&db2, &records).unwrap();

        let check = db2.begin();
        let rows = db2
            .scan_validated(
                check,
                t2,
                &[Value::BigInt(0)],
                &[Value::BigInt(7)],
                LockingPolicy::Bypass,
            )
            .expect("validated scan must pass against a recovered database");
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[2][2], Value::Int(222), "winner's update redone");
        assert_eq!(rows[3][2], Value::Int(3), "loser's update never applied");
        assert_eq!(
            db2.counters().validated_retries,
            0,
            "replayed records are stable on first probe"
        );
        db2.commit(check).unwrap();
    }

    #[test]
    fn recovery_from_encoded_log_bytes() {
        // Round-trip through the binary log encoding, as a real restart would.
        let (db, t) = fresh_db();
        let txn = db.begin();
        for i in 0..10 {
            db.insert(
                txn,
                t,
                item(i, "persisted", i as i32),
                LockingPolicy::Bypass,
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
        let bytes = db.log().encode();
        let records = crate::wal::LogManager::decode(&bytes).unwrap();
        let (db2, t2) = fresh_db();
        recover(&db2, &records).unwrap();
        assert_eq!(db2.row_count(t2).unwrap(), 10);
    }

    #[test]
    fn undo_pass_restores_rows_a_loser_deleted_out_of_a_snapshot() {
        // The fuzzy-checkpoint membership gap: a loser deletes a row
        // before the snapshot scan runs, so the committed image is
        // unreachable and the snapshot is missing the row. Only the
        // loser's logged before-image can bring it back.
        let (db, t) = fresh_db();
        let setup = db.begin();
        db.insert(setup, t, item(7, "victim", 70), LockingPolicy::Bypass)
            .unwrap();
        db.commit(setup).unwrap();

        let loser = db.begin();
        db.delete(loser, t, &[Value::BigInt(7)], LockingPolicy::Bypass)
            .unwrap();
        // Crash here: `loser` never commits or aborts.
        let records = db.log().records();

        // Simulate a snapshot taken *after* the in-flight delete: it is
        // missing row 7 entirely.
        let image = CheckpointImage {
            base_lsn: records.last().unwrap().lsn,
            keep_from: 1,
            tables: vec![("items".into(), vec![])],
        };

        let (db2, t2) = fresh_db();
        let report = recover_with_snapshot(&db2, &records, Some(&image)).unwrap();
        assert_eq!(report.losers, 1);
        assert!(report.undone >= 1);
        let check = db2.begin();
        let row = db2
            .get(check, t2, &[Value::BigInt(7)], LockingPolicy::Bypass)
            .unwrap()
            .expect("undo pass must restore the deleted row");
        assert_eq!(row[2], Value::Int(70));
        db2.commit(check).unwrap();
    }

    #[test]
    fn checkpoint_image_round_trips_and_rejects_corruption() {
        let img = CheckpointImage {
            base_lsn: 42,
            keep_from: 17,
            tables: vec![
                (
                    "items".into(),
                    vec![
                        crate::tuple::encode(&item(1, "a", 10)),
                        crate::tuple::encode(&item(2, "b", 20)),
                    ],
                ),
                ("empty".into(), vec![]),
            ],
        };
        let bytes = img.encode();
        assert_eq!(CheckpointImage::decode(&bytes).as_ref(), Some(&img));
        // Any single corrupted byte must be detected (magic, CRC, or
        // structural failure) — never a panic, never a wrong image.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert_ne!(
                CheckpointImage::decode(&bad).as_ref(),
                Some(&img),
                "corrupt byte {i} must not decode to the original image"
            );
        }
        // Truncations must be rejected too.
        for cut in 0..bytes.len() {
            assert!(CheckpointImage::decode(&bytes[..cut]).is_none());
        }
    }

    #[test]
    fn truncated_log_without_an_image_is_an_error() {
        let (db, t) = fresh_db();
        let txn = db.begin();
        db.insert(txn, t, item(1, "x", 1), LockingPolicy::Bypass)
            .unwrap();
        db.commit(txn).unwrap();
        let mut records = db.log().records();
        records.remove(0); // retained suffix no longer starts at LSN 1
        let (db2, _) = fresh_db();
        let err = recover(&db2, &records).unwrap_err();
        assert!(matches!(err, StorageError::LogCorrupt(_)));
    }
}
