//! ARIES-inspired crash recovery.
//!
//! Recovery replays the write-ahead log against a freshly created database
//! whose schema (catalog) has already been re-established (in a full system
//! the catalog itself is logged; here schemas are code-defined by the
//! workloads, matching how the paper's benchmark kits create them).
//!
//! The three classic passes are implemented over the logical log records of
//! [`crate::wal`]:
//!
//! 1. **Analysis** — determine winner (committed) and loser transactions and
//!    the starting point from the last checkpoint.
//! 2. **Redo** — re-apply the effects of winner transactions in LSN order.
//! 3. **Undo** — because redo is *logical* and filtered to winners, loser
//!    transactions never reappear; the undo pass only has to verify that no
//!    loser left effects behind (it is a no-op by construction and exists to
//!    keep the structure explicit and testable).

use std::collections::HashSet;

use crate::db::Database;
use crate::error::StorageResult;
use crate::types::TxnId;
use crate::wal::{LogPayload, LogRecord};

/// Summary of a recovery run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions found committed in the log.
    pub winners: usize,
    /// Transactions found uncommitted (in-flight at the crash).
    pub losers: usize,
    /// Data records re-applied during redo.
    pub redone: usize,
    /// Records skipped because they belonged to losers.
    pub skipped: usize,
    /// LSN of the last checkpoint seen (0 if none).
    pub checkpoint_lsn: u64,
}

/// Analysis pass: classify transactions as winners or losers.
pub fn analyze(records: &[LogRecord]) -> (HashSet<TxnId>, HashSet<TxnId>, u64) {
    let mut started: HashSet<TxnId> = HashSet::new();
    let mut winners: HashSet<TxnId> = HashSet::new();
    let mut checkpoint_lsn = 0;
    for r in records {
        match &r.payload {
            LogPayload::Begin => {
                started.insert(r.txn);
            }
            LogPayload::Commit => {
                winners.insert(r.txn);
            }
            LogPayload::Abort => {
                // Aborted transactions already rolled back before crashing;
                // they are neither winners nor pending losers.
                started.remove(&r.txn);
            }
            LogPayload::Checkpoint { active } => {
                checkpoint_lsn = r.lsn;
                for t in active {
                    started.insert(*t);
                }
            }
            _ => {
                started.insert(r.txn);
            }
        }
    }
    let losers: HashSet<TxnId> = started.difference(&winners).copied().collect();
    (winners, losers, checkpoint_lsn)
}

/// Runs full recovery of `records` into `db` (which must already contain the
/// schema but no data). Returns a report of what was done.
pub fn recover(db: &Database, records: &[LogRecord]) -> StorageResult<RecoveryReport> {
    let (winners, losers, checkpoint_lsn) = analyze(records);
    let mut report = RecoveryReport {
        winners: winners.len(),
        losers: losers.len(),
        checkpoint_lsn,
        ..Default::default()
    };
    // Redo pass: apply winner changes in LSN order.
    for r in records {
        let is_winner = winners.contains(&r.txn);
        match &r.payload {
            LogPayload::Insert { table, tuple, .. } => {
                if is_winner {
                    db.insert_raw(*table, tuple.clone())?;
                    report.redone += 1;
                } else {
                    report.skipped += 1;
                }
            }
            LogPayload::Update {
                table, key, after, ..
            } => {
                if is_winner {
                    // Idempotent logical redo: overwrite with the after image.
                    if db.update_raw(*table, key, after.clone())? {
                        report.redone += 1;
                    }
                } else {
                    report.skipped += 1;
                }
            }
            LogPayload::Delete { table, key, .. } => {
                if is_winner {
                    if db.delete_raw(*table, key)? {
                        report.redone += 1;
                    }
                } else {
                    report.skipped += 1;
                }
            }
            _ => {}
        }
    }
    // Undo pass: by construction (logical redo filtered to winners) there is
    // nothing to undo; losers were never applied.
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Database, LockingPolicy};
    use crate::schema::{ColumnDef, TableSchema};
    use crate::types::{DataType, Value};

    fn schema() -> TableSchema {
        TableSchema::new(
            "items",
            vec![
                ColumnDef::new("id", DataType::BigInt),
                ColumnDef::new("name", DataType::Varchar(32)),
                ColumnDef::new("qty", DataType::Int),
            ],
            vec![0],
        )
    }

    fn fresh_db() -> (Database, u32) {
        let db = Database::default();
        let t = db.create_table(schema()).unwrap();
        (db, t)
    }

    fn item(id: i64, name: &str, qty: i32) -> Vec<Value> {
        vec![
            Value::BigInt(id),
            Value::Varchar(name.into()),
            Value::Int(qty),
        ]
    }

    #[test]
    fn committed_work_survives_recovery() {
        let (db, t) = fresh_db();
        let txn = db.begin();
        for i in 0..20 {
            db.insert(txn, t, item(i, "widget", i as i32), LockingPolicy::Bypass)
                .unwrap();
        }
        db.update(
            txn,
            t,
            &[Value::BigInt(3)],
            &[(2, Value::Int(999))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        db.delete(txn, t, &[Value::BigInt(5)], LockingPolicy::Bypass)
            .unwrap();
        db.commit(txn).unwrap();

        // Simulate a crash: replay the log into a fresh database.
        let records = db.log().records();
        let (db2, t2) = fresh_db();
        let report = recover(&db2, &records).unwrap();
        assert_eq!(report.winners, 1);
        assert_eq!(report.losers, 0);
        assert!(report.redone >= 21);

        assert_eq!(db2.row_count(t2).unwrap(), 19);
        let check = db2.begin();
        assert_eq!(
            db2.get(check, t2, &[Value::BigInt(3)], LockingPolicy::Bypass)
                .unwrap()
                .unwrap()[2],
            Value::Int(999)
        );
        assert!(db2
            .get(check, t2, &[Value::BigInt(5)], LockingPolicy::Bypass)
            .unwrap()
            .is_none());
        db2.commit(check).unwrap();
    }

    #[test]
    fn uncommitted_work_is_discarded() {
        let (db, t) = fresh_db();
        let committed = db.begin();
        db.insert(committed, t, item(1, "kept", 1), LockingPolicy::Bypass)
            .unwrap();
        db.commit(committed).unwrap();

        // This transaction never commits (crash while in flight).
        let in_flight = db.begin();
        db.insert(in_flight, t, item(2, "lost", 2), LockingPolicy::Bypass)
            .unwrap();
        db.update(
            in_flight,
            t,
            &[Value::BigInt(1)],
            &[(2, Value::Int(777))],
            LockingPolicy::Bypass,
        )
        .unwrap();

        let records = db.log().records();
        let (db2, t2) = fresh_db();
        let report = recover(&db2, &records).unwrap();
        assert_eq!(report.winners, 1);
        assert_eq!(report.losers, 1);
        assert!(report.skipped >= 2);

        assert_eq!(db2.row_count(t2).unwrap(), 1);
        let check = db2.begin();
        let row = db2
            .get(check, t2, &[Value::BigInt(1)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        assert_eq!(row[2], Value::Int(1), "loser's update must not be redone");
        db2.commit(check).unwrap();
    }

    #[test]
    fn aborted_transactions_are_not_losers() {
        let (db, t) = fresh_db();
        let txn = db.begin();
        db.insert(txn, t, item(1, "rolled-back", 1), LockingPolicy::Bypass)
            .unwrap();
        db.abort(txn).unwrap();

        let records = db.log().records();
        let (winners, losers, _) = analyze(&records);
        assert!(winners.is_empty());
        assert!(losers.is_empty());

        let (db2, t2) = fresh_db();
        recover(&db2, &records).unwrap();
        assert_eq!(db2.row_count(t2).unwrap(), 0);
    }

    #[test]
    fn checkpoint_lsn_is_reported() {
        let (db, t) = fresh_db();
        let txn = db.begin();
        db.insert(txn, t, item(1, "x", 1), LockingPolicy::Bypass)
            .unwrap();
        db.checkpoint();
        db.commit(txn).unwrap();
        let records = db.log().records();
        let (db2, _) = fresh_db();
        let report = recover(&db2, &records).unwrap();
        assert!(report.checkpoint_lsn > 0);
    }

    #[test]
    fn recovery_restores_stable_versions_for_validated_reads() {
        // Versioning is not logged — the logical redo path mints fresh
        // stable (even, stamp-0) headers — so a recovered database serves
        // lock-free validated reads immediately, even when the crash
        // happened mid-transaction (the loser's writes are skipped, never
        // leaving an in-progress or uncommitted image behind).
        let (db, t) = fresh_db();
        let committed = db.begin();
        for i in 0..8 {
            db.insert(
                committed,
                t,
                item(i, "stable", i as i32),
                LockingPolicy::Bypass,
            )
            .unwrap();
        }
        db.update(
            committed,
            t,
            &[Value::BigInt(2)],
            &[(2, Value::Int(222))],
            LockingPolicy::Bypass,
        )
        .unwrap();
        db.commit(committed).unwrap();
        // A loser crashes mid-flight with an update in place.
        let loser = db.begin();
        db.update(
            loser,
            t,
            &[Value::BigInt(3)],
            &[(2, Value::Int(-1))],
            LockingPolicy::Bypass,
        )
        .unwrap();

        let records = db.log().records();
        let (db2, t2) = fresh_db();
        recover(&db2, &records).unwrap();

        let check = db2.begin();
        let rows = db2
            .scan_validated(
                check,
                t2,
                &[Value::BigInt(0)],
                &[Value::BigInt(7)],
                LockingPolicy::Bypass,
            )
            .expect("validated scan must pass against a recovered database");
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[2][2], Value::Int(222), "winner's update redone");
        assert_eq!(rows[3][2], Value::Int(3), "loser's update never applied");
        assert_eq!(
            db2.counters().validated_retries,
            0,
            "replayed records are stable on first probe"
        );
        db2.commit(check).unwrap();
    }

    #[test]
    fn recovery_from_encoded_log_bytes() {
        // Round-trip through the binary log encoding, as a real restart would.
        let (db, t) = fresh_db();
        let txn = db.begin();
        for i in 0..10 {
            db.insert(
                txn,
                t,
                item(i, "persisted", i as i32),
                LockingPolicy::Bypass,
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
        let bytes = db.log().encode();
        let records = crate::wal::LogManager::decode(&bytes).unwrap();
        let (db2, t2) = fresh_db();
        recover(&db2, &records).unwrap();
        assert_eq!(db2.row_count(t2).unwrap(), 10);
    }
}
