//! Self-describing binary tuple encoding.
//!
//! Records are stored inside slotted pages as byte strings. The encoding is
//! self-describing (a tag byte per value) so that heap scans and recovery
//! can decode records without consulting the catalog.

use crate::error::{StorageError, StorageResult};
use crate::types::Value;

/// A tuple is an ordered list of values. This module provides the on-page
/// encoding; in-memory code simply passes `Vec<Value>` around.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple(pub Vec<Value>);

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_BIGINT: u8 = 2;
const TAG_DOUBLE: u8 = 3;
const TAG_VARCHAR: u8 = 4;
const TAG_BOOL: u8 = 5;

/// Encodes a slice of values into a fresh byte buffer.
pub fn encode(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + values.len() * 9);
    encode_into(values, &mut out);
    out
}

/// Encodes a slice of values, appending to `out`.
pub fn encode_into(values: &[Value], out: &mut Vec<u8>) {
    out.extend_from_slice(&(values.len() as u16).to_le_bytes());
    for v in values {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::BigInt(i) => {
                out.push(TAG_BIGINT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Double(d) => {
                out.push(TAG_DOUBLE);
                out.extend_from_slice(&d.to_le_bytes());
            }
            Value::Varchar(s) => {
                out.push(TAG_VARCHAR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(*b as u8);
            }
        }
    }
}

/// Decodes a byte buffer produced by [`encode`] back into values.
pub fn decode(bytes: &[u8]) -> StorageResult<Vec<Value>> {
    let mut cursor = Cursor { buf: bytes, pos: 0 };
    let count = cursor.read_u16()? as usize;
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = cursor.read_u8()?;
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Int(i32::from_le_bytes(cursor.read_array::<4>()?)),
            TAG_BIGINT => Value::BigInt(i64::from_le_bytes(cursor.read_array::<8>()?)),
            TAG_DOUBLE => Value::Double(f64::from_le_bytes(cursor.read_array::<8>()?)),
            TAG_VARCHAR => {
                let len = u32::from_le_bytes(cursor.read_array::<4>()?) as usize;
                let raw = cursor.read_slice(len)?;
                let s = std::str::from_utf8(raw)
                    .map_err(|e| StorageError::LogCorrupt(format!("invalid utf8: {e}")))?;
                Value::Varchar(s.to_string())
            }
            TAG_BOOL => Value::Bool(cursor.read_u8()? != 0),
            other => {
                return Err(StorageError::LogCorrupt(format!(
                    "unknown value tag {other}"
                )))
            }
        };
        values.push(v);
    }
    Ok(values)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn read_u8(&mut self) -> StorageResult<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| StorageError::LogCorrupt("truncated tuple".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn read_u16(&mut self) -> StorageResult<u16> {
        Ok(u16::from_le_bytes(self.read_array::<2>()?))
    }

    fn read_array<const N: usize>(&mut self) -> StorageResult<[u8; N]> {
        let s = self.read_slice(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }

    fn read_slice(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StorageError::LogCorrupt("truncated tuple".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let vals = vec![
            Value::Null,
            Value::Int(-42),
            Value::BigInt(1 << 40),
            Value::Double(3.25),
            Value::Varchar("hello world".into()),
            Value::Bool(true),
            Value::Bool(false),
        ];
        let bytes = encode(&vals);
        let back = decode(&bytes).unwrap();
        assert_eq!(vals, back);
    }

    #[test]
    fn roundtrip_empty_tuple() {
        let bytes = encode(&[]);
        assert_eq!(decode(&bytes).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let vals = vec![Value::Varchar("abcdefgh".into())];
        let bytes = encode(&vals);
        assert!(decode(&bytes[..bytes.len() - 3]).is_err());
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut bytes = encode(&[Value::Int(1)]);
        bytes[2] = 99; // corrupt the tag
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn large_strings_roundtrip() {
        let s = "x".repeat(5000);
        let vals = vec![Value::Varchar(s.clone())];
        let back = decode(&encode(&vals)).unwrap();
        assert_eq!(back[0].as_str().unwrap(), s);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i32>().prop_map(Value::Int),
            any::<i64>().prop_map(Value::BigInt),
            any::<f64>().prop_map(Value::Double),
            "[a-zA-Z0-9 ]{0,40}".prop_map(Value::Varchar),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(vals in proptest::collection::vec(arb_value(), 0..20)) {
            let bytes = encode(&vals);
            let back = decode(&bytes).unwrap();
            // NaN compares equal under our total ordering, so Vec equality holds.
            prop_assert_eq!(vals, back);
        }

        #[test]
        fn encoding_is_prefix_free_on_count(vals in proptest::collection::vec(arb_value(), 1..10)) {
            // Dropping the last byte must never decode successfully to the
            // same number of values.
            let bytes = encode(&vals);
            if let Ok(decoded) = decode(&bytes[..bytes.len()-1]) {
                prop_assert!(decoded.len() != vals.len() || decoded != vals);
            }
        }
    }
}
