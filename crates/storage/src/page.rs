//! Slotted page layout.
//!
//! Every heap-file page is a fixed-size byte array with the classic slotted
//! layout used by Shore-MT and most disk-based storage managers:
//!
//! ```text
//! +---------------+------------------+---------------....----+-----------+
//! | header (16 B) | slot directory → |        free space     | ← records |
//! +---------------+------------------+---------------....----+-----------+
//! ```
//!
//! * header: `slot_count: u16`, `free_start: u16` (end of slot directory),
//!   `free_end: u16` (start of record area, grows downwards), 2 pad bytes,
//!   `page_lsn: u64` — the LSN of the WAL record covering the page's most
//!   recent mutation. The buffer pool stamps it when a page is dirtied and
//!   the eviction/writeback paths enforce WAL-before-data against it: page
//!   bytes never reach the page store before the log covering them is
//!   durable.
//! * each slot: `offset: u16`, `len: u16`; `offset == 0xFFFF` marks a
//!   deleted/free slot (page offsets never reach 0xFFFF because the page is
//!   smaller than 64 KiB).

use crate::types::{Lsn, SlotId};

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;

const HEADER_SIZE: usize = 16;
const LSN_OFFSET: usize = 8;
const SLOT_SIZE: usize = 4;
const FREE_SLOT: u16 = u16::MAX;

/// A slotted page view over a fixed-size buffer.
///
/// `SlottedPage` owns its buffer; the buffer pool hands out copies of page
/// bytes wrapped in this type and writes them back on unpin.
#[derive(Clone)]
pub struct SlottedPage {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for SlottedPage {
    fn default() -> Self {
        Self::new()
    }
}

impl SlottedPage {
    /// Creates an empty, formatted page.
    pub fn new() -> Self {
        let mut p = SlottedPage {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_slot_count(0);
        p.set_free_start(HEADER_SIZE as u16);
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    /// Wraps existing page bytes (e.g. read back from the page store).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), PAGE_SIZE, "page must be exactly PAGE_SIZE");
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        SlottedPage { data }
    }

    /// Returns the raw page bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    fn write_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots in the directory (including deleted ones).
    pub fn slot_count(&self) -> u16 {
        self.read_u16(0)
    }

    fn set_slot_count(&mut self, v: u16) {
        self.write_u16(0, v);
    }

    fn free_start(&self) -> u16 {
        self.read_u16(2)
    }

    fn set_free_start(&mut self, v: u16) {
        self.write_u16(2, v);
    }

    fn free_end(&self) -> u16 {
        self.read_u16(4)
    }

    fn set_free_end(&mut self, v: u16) {
        self.write_u16(4, v);
    }

    /// LSN of the WAL record covering this page's most recent mutation
    /// (0 when the page has never been mutated under a WAL).
    pub fn lsn(&self) -> Lsn {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[LSN_OFFSET..LSN_OFFSET + 8]);
        u64::from_le_bytes(b)
    }

    /// Stamps the page LSN. Called by the buffer pool when a mutation
    /// dirties the page; LSNs only move forward.
    pub fn set_lsn(&mut self, lsn: Lsn) {
        self.data[LSN_OFFSET..LSN_OFFSET + 8].copy_from_slice(&lsn.to_le_bytes());
    }

    fn slot_offset(&self, slot: SlotId) -> usize {
        HEADER_SIZE + slot as usize * SLOT_SIZE
    }

    fn slot(&self, slot: SlotId) -> Option<(u16, u16)> {
        if slot >= self.slot_count() {
            return None;
        }
        let base = self.slot_offset(slot);
        let off = self.read_u16(base);
        let len = self.read_u16(base + 2);
        if off == FREE_SLOT {
            None
        } else {
            Some((off, len))
        }
    }

    fn set_slot(&mut self, slot: SlotId, off: u16, len: u16) {
        let base = self.slot_offset(slot);
        self.write_u16(base, off);
        self.write_u16(base + 2, len);
    }

    /// Free bytes available for a new record (accounting for a new slot
    /// directory entry if none can be reused).
    pub fn free_space(&self) -> usize {
        (self.free_end() as usize).saturating_sub(self.free_start() as usize)
    }

    /// Whether a record of `len` bytes fits on this page.
    pub fn fits(&self, len: usize) -> bool {
        // Worst case we need a new slot entry as well.
        self.free_space() >= len + SLOT_SIZE
    }

    /// Inserts a record, returning its slot, or `None` if it does not fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<SlotId> {
        if record.len() > PAGE_SIZE - HEADER_SIZE - SLOT_SIZE {
            return None;
        }
        // Try to reuse a deleted slot first (keeps the directory compact).
        let reuse = (0..self.slot_count()).find(|&s| {
            let base = self.slot_offset(s);
            self.read_u16(base) == FREE_SLOT
        });
        let need_new_slot = reuse.is_none();
        let needed = record.len() + if need_new_slot { SLOT_SIZE } else { 0 };
        if self.free_space() < needed {
            return None;
        }
        let new_end = self.free_end() as usize - record.len();
        self.data[new_end..new_end + record.len()].copy_from_slice(record);
        self.set_free_end(new_end as u16);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                self.set_free_start(self.free_start() + SLOT_SIZE as u16);
                s
            }
        };
        self.set_slot(slot, new_end as u16, record.len() as u16);
        Some(slot)
    }

    /// Reads the record stored in `slot`, if any.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        let (off, len) = self.slot(slot)?;
        Some(&self.data[off as usize..off as usize + len as usize])
    }

    /// Reads up to `len` leading bytes of the record in `slot` without
    /// exposing the rest. Used by the versioned-read revalidation pass,
    /// which only needs a record's fixed-size version header.
    pub fn prefix(&self, slot: SlotId, len: usize) -> Option<&[u8]> {
        let record = self.get(slot)?;
        Some(&record[..len.min(record.len())])
    }

    /// Overwrites the leading bytes of the record in `slot` in place.
    /// Returns `false` when the slot is empty or shorter than `prefix` —
    /// the record's length and position never change, so this is safe to
    /// run on a record other readers hold a [`RecordId`](crate::types) to
    /// (the versioned write path uses it to flip a record's version word).
    pub fn write_prefix(&mut self, slot: SlotId, prefix: &[u8]) -> bool {
        let Some((off, len)) = self.slot(slot) else {
            return false;
        };
        if (len as usize) < prefix.len() {
            return false;
        }
        let off = off as usize;
        self.data[off..off + prefix.len()].copy_from_slice(prefix);
        true
    }

    /// Deletes the record in `slot`. Returns `true` if a record was present.
    /// Space is reclaimed lazily (the record area is not compacted).
    pub fn delete(&mut self, slot: SlotId) -> bool {
        if self.slot(slot).is_none() {
            return false;
        }
        self.set_slot(slot, FREE_SLOT, 0);
        true
    }

    /// Updates the record in `slot` in place. Returns `false` when the slot
    /// is empty or the new record does not fit in the old record's space
    /// and the page has no free room for it (the caller then relocates the
    /// record to another page).
    pub fn update(&mut self, slot: SlotId, record: &[u8]) -> bool {
        let Some((off, len)) = self.slot(slot) else {
            return false;
        };
        if record.len() <= len as usize {
            // Shrinking or same-size update: overwrite in place.
            let off = off as usize;
            self.data[off..off + record.len()].copy_from_slice(record);
            self.set_slot(slot, off as u16, record.len() as u16);
            true
        } else if self.free_space() >= record.len() {
            // Growing update: append a fresh copy; old space is leaked until
            // the page is compacted/rewritten (as in Shore-MT's lazy reclaim).
            let new_end = self.free_end() as usize - record.len();
            self.data[new_end..new_end + record.len()].copy_from_slice(record);
            self.set_free_end(new_end as u16);
            self.set_slot(slot, new_end as u16, record.len() as u16);
            true
        } else {
            false
        }
    }

    /// Iterates over `(slot, record bytes)` of all live records.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Number of live (non-deleted) records.
    pub fn live_records(&self) -> usize {
        self.iter().count()
    }
}

impl std::fmt::Debug for SlottedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlottedPage")
            .field("slots", &self.slot_count())
            .field("live", &self.live_records())
            .field("free", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = SlottedPage::new();
        let s1 = p.insert(b"hello").unwrap();
        let s2 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s1).unwrap(), b"hello");
        assert_eq!(p.get(s2).unwrap(), b"world!");
        assert_ne!(s1, s2);
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut p = SlottedPage::new();
        let s1 = p.insert(b"aaaa").unwrap();
        let _s2 = p.insert(b"bbbb").unwrap();
        assert!(p.delete(s1));
        assert!(p.get(s1).is_none());
        assert!(!p.delete(s1));
        let s3 = p.insert(b"cccc").unwrap();
        assert_eq!(s3, s1, "deleted slot should be reused");
        assert_eq!(p.get(s3).unwrap(), b"cccc");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"0123456789").unwrap();
        assert!(p.update(s, b"abc"));
        assert_eq!(p.get(s).unwrap(), b"abc");
        assert!(p.update(s, b"a much longer record than before"));
        assert_eq!(p.get(s).unwrap(), b"a much longer record than before");
        assert!(!p.update(99, b"x"));
    }

    #[test]
    fn prefix_reads_and_writes_in_place() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"versioned-record").unwrap();
        assert_eq!(p.prefix(s, 9).unwrap(), b"versioned");
        // A prefix longer than the record is clamped, not an error.
        assert_eq!(p.prefix(s, 1000).unwrap(), b"versioned-record");
        assert!(p.prefix(99, 4).is_none());

        assert!(p.write_prefix(s, b"VERSIONED"));
        assert_eq!(p.get(s).unwrap(), b"VERSIONED-record");
        // Writing past the record's length is refused outright.
        assert!(!p.write_prefix(s, &[0u8; 100]));
        assert!(!p.write_prefix(99, b"x"));
        p.delete(s);
        assert!(!p.write_prefix(s, b"x"), "deleted slot rejects writes");
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = SlottedPage::new();
        let rec = vec![7u8; 1000];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 8192-byte page with a 16-byte header, 1004 bytes per
        // record+slot => 8 records fit.
        assert_eq!(n, 8);
        assert!(!p.fits(1000));
        assert!(p.fits(10));
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = SlottedPage::new();
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_none());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"persisted").unwrap();
        p.set_lsn(42);
        let copy = SlottedPage::from_bytes(p.as_bytes());
        assert_eq!(copy.get(s).unwrap(), b"persisted");
        assert_eq!(copy.slot_count(), p.slot_count());
        assert_eq!(copy.lsn(), 42);
    }

    #[test]
    fn page_lsn_defaults_to_zero_and_survives_mutation() {
        let mut p = SlottedPage::new();
        assert_eq!(p.lsn(), 0);
        p.set_lsn(7);
        let s = p.insert(b"record").unwrap();
        assert!(p.update(s, b"record2"));
        assert_eq!(p.lsn(), 7, "slot ops must not clobber the LSN field");
        p.set_lsn(9);
        assert_eq!(p.lsn(), 9);
        assert_eq!(p.get(s).unwrap(), b"record2");
    }

    #[test]
    fn iter_skips_deleted() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"a").unwrap();
        let _b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(a);
        let live: Vec<_> = p.iter().map(|(s, _)| s).collect();
        assert!(!live.contains(&a));
        assert!(live.contains(&c));
        assert_eq!(live.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        /// Model-based test: a slotted page behaves like a map from slot to
        /// byte string under arbitrary insert/delete/update interleavings.
        #[test]
        fn behaves_like_a_map(ops in proptest::collection::vec(
            (0u8..3, proptest::collection::vec(any::<u8>(), 1..200)), 1..120)) {
            let mut page = SlottedPage::new();
            let mut model: HashMap<SlotId, Vec<u8>> = HashMap::new();
            for (op, payload) in ops {
                match op {
                    0 => {
                        if let Some(slot) = page.insert(&payload) {
                            model.insert(slot, payload);
                        }
                    }
                    1 => {
                        if let Some(&slot) = model.keys().next() {
                            prop_assert!(page.delete(slot));
                            model.remove(&slot);
                        }
                    }
                    _ => {
                        if let Some(&slot) = model.keys().next() {
                            if page.update(slot, &payload) {
                                model.insert(slot, payload);
                            }
                        }
                    }
                }
                // Invariants: every model entry readable and equal.
                for (slot, bytes) in &model {
                    prop_assert_eq!(page.get(*slot).unwrap(), &bytes[..]);
                }
                prop_assert_eq!(page.live_records(), model.len());
            }
        }
    }
}
