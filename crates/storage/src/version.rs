//! Per-record versioning: the seqlock-style version word.
//!
//! Every heap record carries a fixed 16-byte header ahead of its tuple
//! bytes:
//!
//! ```text
//! +----------------+----------------+----------------....----+
//! | word: u64 LE   | stamp: u64 LE  |      tuple bytes       |
//! +----------------+----------------+----------------....----+
//! ```
//!
//! * **word** — a seqlock-style version counter. An **odd** word marks a
//!   write in progress (the record bytes may be mid-rewrite); an **even**
//!   word marks a stable image. Every published write advances the word
//!   past the next odd value, so the parity invariant survives wrap-around
//!   (2⁶⁴ is even: an even word plus two wraps to an even word).
//! * **stamp** — the id of the transaction that produced the image
//!   (`0` for loader/undo/recovery writes, which are stable by
//!   construction). A validated reader treats an image as *uncommitted*
//!   while the stamped transaction is still `Active` — or `Aborted` but
//!   not yet rolled back, since undo rewrites every record the aborted
//!   transaction touched with a fresh stamp-0 header.
//!
//! The header is what makes the lock-free ("secondary") read path of the
//! DORA executor safe: [`crate::db::Database::read_validated`] and friends
//! collect `(record, word)` pairs, reject in-progress or uncommitted
//! images, and re-read the words after decoding — any concurrent write
//! moved a word, so an unchanged set of words proves the rows form one
//! consistent snapshot. The write-ahead log stays purely logical (no
//! version words are logged): undo and recovery replay through the raw
//! operations in [`crate::db`], which mint fresh stable headers, so a
//! restarted database serves validated reads immediately
//! (`recovery::tests::recovery_restores_stable_versions_for_validated_reads`).

use crate::error::{StorageError, StorageResult};
use crate::types::TxnId;

/// Bytes of the record header: version word + writer stamp.
pub const RECORD_HEADER_BYTES: usize = 16;

/// Version word of a freshly inserted record (even ⇒ stable).
pub const INITIAL_VERSION: u64 = 2;

/// The version header of one heap record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordVersion {
    /// Seqlock-style version word; odd means a write is in progress.
    pub word: u64,
    /// Transaction that produced the current image (`0` = system write:
    /// loader, undo, recovery — always stable).
    pub stamp: TxnId,
}

impl RecordVersion {
    /// Header of a brand-new record written by `stamp`.
    pub fn initial(stamp: TxnId) -> Self {
        RecordVersion {
            word: INITIAL_VERSION,
            stamp,
        }
    }

    /// Whether the word marks a write in progress (odd).
    pub fn is_write_in_progress(&self) -> bool {
        self.word & 1 == 1
    }

    /// The in-progress marker a writer stamps before rewriting the record:
    /// same version, odd, carrying the writer's id so a blocked reader can
    /// report *who* it is waiting for.
    pub fn begin_write(self, stamp: TxnId) -> Self {
        RecordVersion {
            word: self.word | 1,
            stamp,
        }
    }

    /// The header a writer publishes with the new image: strictly past the
    /// in-progress value and even again. Wrap-around preserves parity (an
    /// even word advances by exactly two).
    pub fn publish(self, stamp: TxnId) -> Self {
        RecordVersion {
            word: (self.word | 1).wrapping_add(1),
            stamp,
        }
    }

    /// Serializes the header to its on-page form.
    pub fn to_bytes(self) -> [u8; RECORD_HEADER_BYTES] {
        let mut out = [0u8; RECORD_HEADER_BYTES];
        out[..8].copy_from_slice(&self.word.to_le_bytes());
        out[8..].copy_from_slice(&self.stamp.to_le_bytes());
        out
    }

    /// Parses a header from the leading bytes of a record.
    pub fn from_bytes(bytes: &[u8]) -> StorageResult<Self> {
        if bytes.len() < RECORD_HEADER_BYTES {
            return Err(StorageError::LogCorrupt(
                "record too short for a version header".into(),
            ));
        }
        Ok(RecordVersion {
            word: u64::from_le_bytes(bytes[..8].try_into().expect("length checked")),
            stamp: u64::from_le_bytes(bytes[8..16].try_into().expect("length checked")),
        })
    }
}

/// Prepends `version` to `tuple` bytes, producing the on-page record.
pub fn encode_record(version: RecordVersion, tuple: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + tuple.len());
    out.extend_from_slice(&version.to_bytes());
    out.extend_from_slice(tuple);
    out
}

/// Splits an on-page record into its version header and tuple bytes.
pub fn split(record: &[u8]) -> StorageResult<(RecordVersion, &[u8])> {
    let version = RecordVersion::from_bytes(record)?;
    Ok((version, &record[RECORD_HEADER_BYTES..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let v = RecordVersion { word: 42, stamp: 7 };
        let bytes = encode_record(v, b"payload");
        let (back, tuple) = split(&bytes).unwrap();
        assert_eq!(back, v);
        assert_eq!(tuple, b"payload");
        assert!(split(&bytes[..10]).is_err(), "truncated header rejected");
    }

    #[test]
    fn initial_is_stable_and_begin_write_is_odd() {
        let v = RecordVersion::initial(9);
        assert!(!v.is_write_in_progress());
        assert_eq!(v.stamp, 9);
        let marked = v.begin_write(11);
        assert!(marked.is_write_in_progress());
        assert_eq!(marked.stamp, 11);
        // Marking an already-odd word keeps it odd and in place.
        assert_eq!(marked.begin_write(11).word, marked.word);
    }

    #[test]
    fn publish_advances_past_the_marker_and_stays_even() {
        let v = RecordVersion::initial(1);
        let published = v.publish(2);
        assert_eq!(published.word, v.word + 2);
        assert!(!published.is_write_in_progress());
        // Publishing from the odd in-progress marker lands on the same word.
        assert_eq!(v.begin_write(2).publish(2), published);
    }

    #[test]
    fn wrap_around_preserves_the_parity_invariant() {
        // An even word two steps from wrap-around: publish must wrap to 0
        // and stay even; the odd marker just before it must stay odd.
        let near_max = RecordVersion {
            word: u64::MAX - 1,
            stamp: 0,
        };
        assert!(!near_max.is_write_in_progress());
        let marked = near_max.begin_write(5);
        assert_eq!(marked.word, u64::MAX);
        assert!(marked.is_write_in_progress());
        let wrapped = near_max.publish(5);
        assert_eq!(wrapped.word, 0);
        assert!(!wrapped.is_write_in_progress());
        // A long chain of publishes across the wrap never produces an even
        // in-progress word or an odd stable word.
        let mut v = RecordVersion {
            word: u64::MAX - 9,
            stamp: 0,
        };
        for i in 0..16 {
            assert!(!v.is_write_in_progress(), "stable word went odd at {i}");
            assert!(v.begin_write(1).is_write_in_progress());
            v = v.publish(1);
        }
    }
}
