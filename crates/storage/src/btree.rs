//! B+-tree access method.
//!
//! The storage manager's ordered access method, used for every primary and
//! secondary index. Keys are composite [`Key`] values; entries map a key to
//! a [`RecordId`] in the table's heap file. Duplicate keys are allowed (for
//! non-unique secondary indexes); uniqueness is enforced one level up by the
//! database facade.
//!
//! Concurrency: the tree is guarded by a single reader-writer latch. The
//! paper's scalability argument concerns the *lock manager*, not index
//! latching (Shore-MT already fixed index latching), so a coarse latch keeps
//! this substrate simple while preserving the contention profile that
//! matters: reads (the vast majority of index traffic in TATP/TPC-C probes)
//! proceed in parallel.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;

use crate::types::{Key, RecordId, Value};

/// Maximum number of entries/keys per node before it splits.
const DEFAULT_ORDER: usize = 64;

enum Node {
    Leaf { entries: Vec<(Key, RecordId)> },
    Internal { keys: Vec<Key>, children: Vec<Node> },
}

impl Node {
    fn new_leaf() -> Node {
        Node::Leaf {
            entries: Vec::new(),
        }
    }
}

/// A B+-tree index over composite keys.
pub struct BPlusTree {
    root: RwLock<Node>,
    order: usize,
    len: AtomicUsize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// Creates an empty tree with the default node order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Creates an empty tree with a custom node order (minimum 4); small
    /// orders are useful in tests to force deep trees.
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "order must be at least 4");
        BPlusTree {
            root: RwLock::new(Node::new_leaf()),
            order,
            len: AtomicUsize::new(0),
        }
    }

    /// Number of entries in the tree.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an entry. Duplicate keys are allowed.
    pub fn insert(&self, key: Key, rid: RecordId) {
        let mut root = self.root.write();
        if let Some((sep, right)) = Self::insert_rec(&mut root, key, rid, self.order) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut *root, Node::new_leaf());
            *root = Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            };
        }
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes one entry matching `(key, rid)`. Returns true if found.
    ///
    /// Underflowing nodes are not rebalanced (lazy deletion, as in many
    /// production trees); the tree stays correct, only possibly less dense.
    pub fn remove(&self, key: &[Value], rid: RecordId) -> bool {
        let mut root = self.root.write();
        let removed = Self::remove_rec(&mut root, key, rid);
        if removed {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Returns every record id stored under `key`.
    pub fn get(&self, key: &[Value]) -> Vec<RecordId> {
        let mut out = Vec::new();
        let root = self.root.read();
        Self::visit_from(
            &root,
            Some(key),
            &mut |k, rid| match k.as_slice().cmp(key) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => {
                    out.push(*rid);
                    true
                }
                std::cmp::Ordering::Greater => false,
            },
        );
        out
    }

    /// Returns the first record id stored under `key` (useful for unique
    /// indexes).
    pub fn get_first(&self, key: &[Value]) -> Option<RecordId> {
        self.get(key).into_iter().next()
    }

    /// True when at least one entry exists under `key`.
    pub fn contains_key(&self, key: &[Value]) -> bool {
        self.get_first(key).is_some()
    }

    /// Returns all entries with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: &[Value], hi: &[Value]) -> Vec<(Key, RecordId)> {
        let mut out = Vec::new();
        let root = self.root.read();
        Self::visit_from(&root, Some(lo), &mut |k, rid| {
            if k.as_slice().cmp(hi) == std::cmp::Ordering::Greater {
                false
            } else {
                if k.as_slice().cmp(lo) != std::cmp::Ordering::Less {
                    out.push((k.clone(), *rid));
                }
                true
            }
        });
        out
    }

    /// Returns all entries whose key starts with `prefix`, in key order.
    /// Used for composite-key probes such as "all call-forwarding rows of a
    /// subscriber".
    pub fn scan_prefix(&self, prefix: &[Value]) -> Vec<(Key, RecordId)> {
        let mut out = Vec::new();
        let root = self.root.read();
        Self::visit_from(&root, Some(prefix), &mut |k, rid| {
            if k.len() >= prefix.len() && &k[..prefix.len()] == prefix {
                out.push((k.clone(), *rid));
                true
            } else {
                // Keys are sorted: once past the prefix region, stop.
                k.as_slice().cmp(prefix) == std::cmp::Ordering::Less
            }
        });
        out
    }

    /// Returns every entry in key order (used by loaders/verification).
    pub fn scan_all(&self) -> Vec<(Key, RecordId)> {
        let mut out = Vec::new();
        let root = self.root.read();
        Self::visit_from(&root, None, &mut |k, rid| {
            out.push((k.clone(), *rid));
            true
        });
        out
    }

    /// Height of the tree (1 for a lone leaf). Exposed for tests and the
    /// physical-design advisor's cost model.
    pub fn height(&self) -> usize {
        let root = self.root.read();
        let mut h = 1;
        let mut node = &*root;
        loop {
            match node {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    h += 1;
                    node = &children[0];
                }
            }
        }
    }

    // --- internal recursion ---------------------------------------------

    fn child_index(keys: &[Key], key: &[Value]) -> usize {
        // Entries equal to a separator live in the right child.
        keys.partition_point(|k| k.as_slice() <= key)
    }

    fn insert_rec(node: &mut Node, key: Key, rid: RecordId, order: usize) -> Option<(Key, Node)> {
        match node {
            Node::Leaf { entries } => {
                let pos = entries.partition_point(|(k, _)| k.as_slice() <= key.as_slice());
                entries.insert(pos, (key, rid));
                if entries.len() > order {
                    let mid = entries.len() / 2;
                    let right_entries = entries.split_off(mid);
                    let sep = right_entries[0].0.clone();
                    Some((
                        sep,
                        Node::Leaf {
                            entries: right_entries,
                        },
                    ))
                } else {
                    None
                }
            }
            Node::Internal { keys, children } => {
                let idx = Self::child_index(keys, &key);
                let split = Self::insert_rec(&mut children[idx], key, rid, order);
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() > order {
                        let mid = keys.len() / 2;
                        let promoted = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // drop the promoted key from the left node
                        let right_children = children.split_off(mid + 1);
                        return Some((
                            promoted,
                            Node::Internal {
                                keys: right_keys,
                                children: right_children,
                            },
                        ));
                    }
                }
                None
            }
        }
    }

    fn remove_rec(node: &mut Node, key: &[Value], rid: RecordId) -> bool {
        match node {
            Node::Leaf { entries } => {
                if let Some(pos) = entries
                    .iter()
                    .position(|(k, r)| k.as_slice() == key && *r == rid)
                {
                    entries.remove(pos);
                    true
                } else {
                    false
                }
            }
            Node::Internal { keys, children } => {
                // Duplicates of `key` may straddle one or more separators
                // equal to `key`, so every child whose key range can contain
                // `key` must be searched: from the first separator >= key
                // (strict lower bound) through the canonical child.
                let first = keys.partition_point(|k| k.as_slice() < key);
                let last = Self::child_index(keys, key);
                for child in &mut children[first..=last] {
                    if Self::remove_rec(child, key, rid) {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// In-order visit of entries with key >= `lo` (or all when `lo` is
    /// `None`). The visitor returns `false` to stop the traversal; the
    /// function returns `false` when the traversal was stopped.
    fn visit_from(
        node: &Node,
        lo: Option<&[Value]>,
        f: &mut impl FnMut(&Key, &RecordId) -> bool,
    ) -> bool {
        match node {
            Node::Leaf { entries } => {
                let start = match lo {
                    Some(lo) => entries.partition_point(|(k, _)| k.as_slice() < lo),
                    None => 0,
                };
                for (k, rid) in &entries[start..] {
                    if !f(k, rid) {
                        return false;
                    }
                }
                true
            }
            Node::Internal { keys, children } => {
                // Use a strict bound so that duplicates equal to a separator
                // that were left in the separator's left child (possible
                // after a split in the middle of a duplicate run) are still
                // visited.
                let start = match lo {
                    Some(lo) => keys.partition_point(|k| k.as_slice() < lo),
                    None => 0,
                };
                for child in &children[start.min(children.len() - 1)..] {
                    if !Self::visit_from(child, lo, f) {
                        return false;
                    }
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: i64) -> Key {
        vec![Value::BigInt(v)]
    }

    fn rid(n: u64) -> RecordId {
        RecordId::new(n, 0)
    }

    #[test]
    fn insert_and_get_single_level() {
        let t = BPlusTree::new();
        t.insert(k(5), rid(5));
        t.insert(k(1), rid(1));
        t.insert(k(9), rid(9));
        assert_eq!(t.get(&k(5)), vec![rid(5)]);
        assert_eq!(t.get(&k(2)), Vec::<RecordId>::new());
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(t.contains_key(&k(1)));
        assert!(!t.contains_key(&k(2)));
    }

    #[test]
    fn splits_produce_correct_lookups() {
        let t = BPlusTree::with_order(4);
        for i in 0..1000i64 {
            t.insert(k(i), rid(i as u64));
        }
        assert!(t.height() > 2, "tree should have split multiple levels");
        for i in 0..1000i64 {
            assert_eq!(t.get(&k(i)), vec![rid(i as u64)], "key {i}");
        }
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn reverse_and_random_insert_order() {
        let t = BPlusTree::with_order(4);
        let mut keys: Vec<i64> = (0..500).collect();
        // Deterministic shuffle.
        keys.sort_by_key(|v| (v * 2654435761i64) % 500);
        for &i in &keys {
            t.insert(k(i), rid(i as u64));
        }
        let all = t.scan_all();
        assert_eq!(all.len(), 500);
        // scan_all returns sorted order
        for w in all.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn duplicate_keys_supported() {
        let t = BPlusTree::with_order(4);
        for i in 0..50u64 {
            t.insert(k(7), rid(i));
        }
        t.insert(k(6), rid(100));
        t.insert(k(8), rid(101));
        let got = t.get(&k(7));
        assert_eq!(got.len(), 50);
        assert_eq!(t.get(&k(6)), vec![rid(100)]);
    }

    #[test]
    fn remove_specific_duplicate() {
        let t = BPlusTree::with_order(4);
        for i in 0..20u64 {
            t.insert(k(3), rid(i));
        }
        assert!(t.remove(&k(3), rid(10)));
        assert!(!t.remove(&k(3), rid(10)));
        assert_eq!(t.get(&k(3)).len(), 19);
        assert!(!t.get(&k(3)).contains(&rid(10)));
        assert_eq!(t.len(), 19);
    }

    #[test]
    fn remove_across_deep_tree() {
        let t = BPlusTree::with_order(4);
        for i in 0..300i64 {
            t.insert(k(i), rid(i as u64));
        }
        for i in (0..300i64).step_by(3) {
            assert!(t.remove(&k(i), rid(i as u64)), "remove {i}");
        }
        for i in 0..300i64 {
            let expect = if i % 3 == 0 { 0 } else { 1 };
            assert_eq!(t.get(&k(i)).len(), expect, "key {i}");
        }
    }

    #[test]
    fn range_scan_inclusive() {
        let t = BPlusTree::with_order(4);
        for i in 0..100i64 {
            t.insert(k(i), rid(i as u64));
        }
        let r = t.range(&k(10), &k(20));
        assert_eq!(r.len(), 11);
        assert_eq!(r.first().unwrap().0, k(10));
        assert_eq!(r.last().unwrap().0, k(20));
        // Empty range
        assert!(t.range(&k(200), &k(300)).is_empty());
        // Single point
        assert_eq!(t.range(&k(5), &k(5)).len(), 1);
    }

    #[test]
    fn composite_key_prefix_scan() {
        let t = BPlusTree::with_order(4);
        // (s_id, sf_type, start_time) like TATP call_forwarding.
        for s_id in 0..20i64 {
            for sf in 1..=4i32 {
                for st in [0i32, 8, 16] {
                    t.insert(
                        vec![Value::BigInt(s_id), Value::Int(sf), Value::Int(st)],
                        rid((s_id * 100 + sf as i64 * 10 + st as i64) as u64),
                    );
                }
            }
        }
        let p = t.scan_prefix(&[Value::BigInt(7)]);
        assert_eq!(p.len(), 12);
        assert!(p.iter().all(|(key, _)| key[0] == Value::BigInt(7)));
        let p2 = t.scan_prefix(&[Value::BigInt(7), Value::Int(2)]);
        assert_eq!(p2.len(), 3);
        let p3 = t.scan_prefix(&[Value::BigInt(999)]);
        assert!(p3.is_empty());
    }

    #[test]
    fn concurrent_readers_and_writer() {
        use std::sync::Arc;
        let t = Arc::new(BPlusTree::new());
        for i in 0..1000i64 {
            t.insert(k(i), rid(i as u64));
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000i64 {
                    assert!(!t.get(&k(i % 1000)).is_empty());
                }
            }));
        }
        let tw = t.clone();
        handles.push(std::thread::spawn(move || {
            for i in 1000..2000i64 {
                tw.insert(k(i), rid(i as u64));
            }
        }));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 2000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        /// The B+-tree agrees with a reference BTreeMap<i64, Vec<u64>> under
        /// random insert/remove/lookup sequences.
        #[test]
        fn agrees_with_reference_map(ops in proptest::collection::vec(
            (0u8..3, 0i64..200, 0u64..50), 1..300)) {
            let tree = BPlusTree::with_order(4);
            let mut model: BTreeMap<i64, Vec<u64>> = BTreeMap::new();
            for (op, key, rid_n) in ops {
                let key_v = vec![Value::BigInt(key)];
                let rid = RecordId::new(rid_n, 0);
                match op {
                    0 => {
                        tree.insert(key_v.clone(), rid);
                        model.entry(key).or_default().push(rid_n);
                    }
                    1 => {
                        let removed = tree.remove(&key_v, rid);
                        let model_removed = if let Some(v) = model.get_mut(&key) {
                            if let Some(p) = v.iter().position(|&x| x == rid_n) {
                                v.remove(p);
                                if v.is_empty() { model.remove(&key); }
                                true
                            } else { false }
                        } else { false };
                        prop_assert_eq!(removed, model_removed);
                    }
                    _ => {
                        let mut got: Vec<u64> = tree.get(&key_v).into_iter().map(|r| r.page).collect();
                        got.sort_unstable();
                        let mut want = model.get(&key).cloned().unwrap_or_default();
                        want.sort_unstable();
                        prop_assert_eq!(got, want);
                    }
                }
            }
            let total: usize = model.values().map(|v| v.len()).sum();
            prop_assert_eq!(tree.len(), total);
        }

        /// Range scans return exactly the keys in [lo, hi], sorted.
        #[test]
        fn range_scan_matches_reference(keys in proptest::collection::btree_set(0i64..500, 0..200),
                                        lo in 0i64..500, hi in 0i64..500) {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let tree = BPlusTree::with_order(4);
            for &kk in &keys {
                tree.insert(vec![Value::BigInt(kk)], RecordId::new(kk as u64, 0));
            }
            let got: Vec<i64> = tree
                .range(&[Value::BigInt(lo)], &[Value::BigInt(hi)])
                .into_iter()
                .map(|(k, _)| k[0].as_i64().unwrap())
                .collect();
            let want: Vec<i64> = keys.iter().copied().filter(|&x| x >= lo && x <= hi).collect();
            prop_assert_eq!(got, want);
        }
    }
}
