//! File-system abstraction for the durable log.
//!
//! Every byte the storage manager puts on (or reads off) disk goes
//! through the [`WalFs`] trait. Two implementations exist:
//!
//! * [`StdFs`] — real files via `std::fs` only (no third-party I/O
//!   crates; see `shims/README.md`).
//! * [`SimFs`] — a deterministic in-memory file system with fault
//!   injection: short/torn writes at arbitrary byte offsets, fsync
//!   failures that drop unsynced bytes (modelling a kernel that
//!   discarded dirty pages), `ENOSPC` on file creation, and
//!   crash-at-failpoint semantics where everything not yet fsynced is
//!   lost except a seed-chosen torn prefix.
//!
//! The WAL surface ([`WalFile`]) is deliberately append-only: the log
//! never seeks, never rewrites, and never memory-maps, so the whole
//! contract is "append bytes, fsync, read back after a crash". The
//! fault model mirrors that: an `append` error means *an arbitrary
//! prefix of the buffer may have reached the file*, and a `sync` error
//! means *previously appended but unsynced bytes may be gone*.
//! [`crate::segment`] builds its poisoning policy directly on those two
//! contracts.
//!
//! The page store is the one component that does rewrite in place, so
//! it gets its own surface: [`PageFile`] is a positioned read/write
//! handle over a fixed-size-page file. Its fault model is
//! page-cache-shaped: a `write_at` lands in an unsynced pending set,
//! `sync` makes the pending writes durable, and a crash keeps only a
//! seed-chosen prefix of the pending writes (each page write is atomic
//! — present in full or absent — because recovery never reads data
//! pages; the WAL-before-data gate in the buffer pool is what makes
//! losing them safe).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

/// An append-only file handle.
pub trait WalFile: Send {
    /// Appends `buf` at the end of the file.
    ///
    /// On error, an **arbitrary prefix** of `buf` may already have been
    /// written — callers that framed `buf` as a record must assume the
    /// file now ends in a torn record.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Forces everything appended so far to stable storage.
    ///
    /// On error, unsynced bytes may have been **dropped** (the POSIX
    /// fsync-failure reality): retrying the sync cannot resurrect them,
    /// which is why the log poisons itself instead of retrying.
    fn sync(&mut self) -> io::Result<()>;
}

/// A positioned read/write handle over a fixed-size-page file.
///
/// Writes land in an OS-page-cache-like pending set until [`sync`]
/// makes them durable; a simulated crash drops pending writes (each one
/// atomically — a page write is present in full or absent). Offsets are
/// byte offsets; the buffer pool always works in whole [`crate::page::PAGE_SIZE`]
/// units.
///
/// [`sync`]: PageFile::sync
pub trait PageFile: Send + Sync {
    /// Reads exactly `buf.len()` bytes at `offset`. Reading past the
    /// current end of file is an error (the page store checks
    /// [`byte_len`](PageFile::byte_len) first).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Writes `buf` at `offset`, extending the file (zero-filled gap)
    /// if `offset` is past the current end.
    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<()>;
    /// Current file length in bytes (including unsynced writes).
    fn byte_len(&self) -> io::Result<u64>;
    /// Forces every write so far to stable storage. On error, unsynced
    /// page writes may have been dropped — callers must treat the
    /// affected pages as dirty again.
    fn sync(&self) -> io::Result<()>;
}

/// Minimal file-system surface the durable log needs.
pub trait WalFs: Send + Sync {
    /// Creates `dir` (and parents) if missing.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// File names (not paths) directly inside `dir`.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Creates (truncating any leftover) an append-only file.
    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Fsyncs the directory itself so created/renamed entries survive a
    /// crash.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Opens (creating if missing, **never** truncating) a positioned
    /// page file for the page store.
    fn open_page_file(&self, path: &Path) -> io::Result<Box<dyn PageFile>>;
}

// ---------------------------------------------------------------------------
// Real files
// ---------------------------------------------------------------------------

/// [`WalFs`] over the real file system, using only `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

struct StdFile(std::fs::File);

impl WalFile for StdFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.0.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

/// Positioned I/O via seek-then-read/write under a mutex: portable
/// (`std::fs` only, no `pread`/`pwrite` platform extensions) and the
/// buffer pool already serializes per-frame I/O, so the mutex is not a
/// hot-path lock.
struct StdPageFile(std::sync::Mutex<std::fs::File>);

impl PageFile for StdPageFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self.0.lock().unwrap_or_else(|e| e.into_inner());
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let mut file = self.0.lock().unwrap_or_else(|e| e.into_inner());
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(buf)
    }

    fn byte_len(&self) -> io::Result<u64> {
        let file = self.0.lock().unwrap_or_else(|e| e.into_inner());
        Ok(file.metadata()?.len())
    }

    fn sync(&self) -> io::Result<()> {
        let file = self.0.lock().unwrap_or_else(|e| e.into_inner());
        file.sync_all()
    }
}

impl WalFs for StdFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is how POSIX makes a new directory entry
        // durable; opening read-only suffices on Linux.
        std::fs::File::open(dir)?.sync_all()
    }

    fn open_page_file(&self, path: &Path) -> io::Result<Box<dyn PageFile>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(StdPageFile(std::sync::Mutex::new(file))))
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// Deterministic fault schedule for [`SimFs`]. Operation counts are
/// global across the file system and 1-based ("the nth append fails").
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// The nth `append` writes only the given number of bytes of its
    /// buffer, then fails with `ENOSPC` (a short/torn write).
    pub short_write: Option<(u64, usize)>,
    /// The nth `sync` fails with `EIO` **and drops the unsynced bytes**
    /// of that file, modelling a kernel that discarded the dirty pages.
    pub fail_sync: Option<u64>,
    /// The nth `create` fails with `ENOSPC` before touching anything.
    pub fail_create: Option<u64>,
    /// Crash-at-failpoint: immediately after the nth `append` completes,
    /// the whole file system crashes (see [`SimFs::crash`]) using the
    /// given tear seed.
    pub crash_after_append: Option<(u64, u64)>,
    /// The nth page-file `write_at` fails with `EIO` before any bytes
    /// land (the write never reaches the pending set).
    pub fail_page_write: Option<u64>,
    /// The nth page-file `sync` fails with `EIO` **and drops the
    /// pending page writes** of that file, modelling a kernel that
    /// discarded the dirty page cache.
    pub fail_page_sync: Option<u64>,
}

#[derive(Default)]
struct SimFile {
    /// Bytes that survived the last sync (or crash-torn remnant).
    durable: Vec<u8>,
    /// Appended but not yet synced bytes.
    pending: Vec<u8>,
}

/// A positioned page file: durable image plus an ordered pending-write
/// set (the simulated OS page cache).
#[derive(Default)]
struct SimPage {
    durable: Vec<u8>,
    pending: Vec<(u64, Vec<u8>)>,
}

impl SimPage {
    /// The file as readers see it pre-crash: durable image with every
    /// pending write applied in order.
    fn view(&self) -> Vec<u8> {
        let mut bytes = self.durable.clone();
        for (off, buf) in &self.pending {
            apply_write(&mut bytes, *off, buf);
        }
        bytes
    }
}

fn apply_write(bytes: &mut Vec<u8>, off: u64, buf: &[u8]) {
    let end = off as usize + buf.len();
    if bytes.len() < end {
        bytes.resize(end, 0);
    }
    bytes[off as usize..end].copy_from_slice(buf);
}

#[derive(Default)]
struct SimState {
    files: BTreeMap<PathBuf, SimFile>,
    pages: BTreeMap<PathBuf, SimPage>,
    dirs: Vec<PathBuf>,
    plan: FaultPlan,
    appends: u64,
    syncs: u64,
    creates: u64,
    page_writes: u64,
    page_syncs: u64,
    /// Bumped by [`SimFs::crash`]; handles from before the crash fail.
    epoch: u64,
}

/// In-memory [`WalFs`] with deterministic fault injection and
/// crash simulation. Cloning shares the underlying state, so a clone
/// handed to a `Database` and the original held by a test observe the
/// same "disk".
#[derive(Clone, Default)]
pub struct SimFs {
    state: Arc<Mutex<SimState>>,
}

impl SimFs {
    /// A fault-free simulated file system.
    pub fn new() -> Self {
        Self::default()
    }

    /// A simulated file system with the given fault schedule.
    pub fn with_faults(plan: FaultPlan) -> Self {
        let fs = Self::default();
        fs.state.lock().plan = plan;
        fs
    }

    /// Replaces the fault schedule (operation counters keep running).
    pub fn set_faults(&self, plan: FaultPlan) {
        self.state.lock().plan = plan;
    }

    /// Simulates a process/machine crash: for every file, synced bytes
    /// survive; unsynced bytes are lost except a torn prefix whose
    /// length is chosen deterministically from `tear_seed` (covering
    /// every byte offset as the seed varies). All handles opened before
    /// the crash go stale and fail on use.
    pub fn crash(&self, tear_seed: u64) {
        let mut st = self.state.lock();
        let mut rng = tear_seed | 1;
        for file in st.files.values_mut() {
            // xorshift64: deterministic, seed-coverable tear points.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let keep = (rng as usize) % (file.pending.len() + 1);
            let torn: Vec<u8> = file.pending[..keep].to_vec();
            file.durable.extend_from_slice(&torn);
            file.pending.clear();
        }
        for page in st.pages.values_mut() {
            // Page writes tear at write granularity: a seed-chosen
            // prefix of the pending writes survives, each in full
            // (recovery never reads data pages, so whole-page atomicity
            // is the interesting model — the WAL-before-data invariant
            // is what a crash here must not be able to break).
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let keep = (rng as usize) % (page.pending.len() + 1);
            let survivors: Vec<(u64, Vec<u8>)> = page.pending.drain(..).take(keep).collect();
            for (off, buf) in survivors {
                apply_write(&mut page.durable, off, &buf);
            }
        }
        st.epoch += 1;
    }

    /// Global `(appends, syncs, creates)` operation counts, for aiming
    /// fault schedules at "the next append" in tests.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        let st = self.state.lock();
        (st.appends, st.syncs, st.creates)
    }

    /// Global `(page_writes, page_syncs)` operation counts for the
    /// positioned page-file surface.
    pub fn page_op_counts(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.page_writes, st.page_syncs)
    }

    /// The current full contents (synced + unsynced) of a file, for
    /// tests that corrupt bytes and feed them back.
    pub fn snapshot(&self, path: &Path) -> Option<Vec<u8>> {
        let st = self.state.lock();
        st.files.get(path).map(|f| {
            let mut all = f.durable.clone();
            all.extend_from_slice(&f.pending);
            all
        })
    }

    /// Overwrites a file's contents as fully synced bytes (test-side
    /// corruption injection).
    pub fn install(&self, path: &Path, bytes: Vec<u8>) {
        let mut st = self.state.lock();
        st.files.insert(
            path.to_path_buf(),
            SimFile {
                durable: bytes,
                pending: Vec::new(),
            },
        );
    }
}

struct SimHandle {
    state: Arc<Mutex<SimState>>,
    path: PathBuf,
    epoch: u64,
}

impl SimHandle {
    fn check_epoch(st: &SimState, epoch: u64) -> io::Result<()> {
        if st.epoch != epoch {
            return Err(io::Error::other("simulated crash: stale file handle"));
        }
        Ok(())
    }
}

impl WalFile for SimHandle {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        let crash_seed;
        {
            let mut st = self.state.lock();
            Self::check_epoch(&st, self.epoch)?;
            st.appends += 1;
            let n = st.appends;
            if let Some((at, keep)) = st.plan.short_write {
                if n == at {
                    let keep = keep.min(buf.len());
                    let file = st.files.entry(self.path.clone()).or_default();
                    file.pending.extend_from_slice(&buf[..keep]);
                    return Err(io::Error::new(
                        io::ErrorKind::StorageFull,
                        format!("injected short write ({keep}/{} bytes)", buf.len()),
                    ));
                }
            }
            let file = st.files.entry(self.path.clone()).or_default();
            file.pending.extend_from_slice(buf);
            crash_seed = match st.plan.crash_after_append {
                Some((at, seed)) if n == at => Some(seed),
                _ => None,
            };
        }
        if let Some(seed) = crash_seed {
            // Drop the lock first: crash() relocks.
            SimFs {
                state: self.state.clone(),
            }
            .crash(seed);
            return Err(io::Error::other("injected crash at failpoint"));
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut st = self.state.lock();
        Self::check_epoch(&st, self.epoch)?;
        st.syncs += 1;
        let n = st.syncs;
        let drop_pending = matches!(st.plan.fail_sync, Some(at) if n == at);
        let file = st.files.entry(self.path.clone()).or_default();
        if drop_pending {
            file.pending.clear();
            return Err(io::Error::other(
                "injected fsync failure (dirty pages dropped)",
            ));
        }
        let pending = std::mem::take(&mut file.pending);
        file.durable.extend_from_slice(&pending);
        Ok(())
    }
}

struct SimPageHandle {
    state: Arc<Mutex<SimState>>,
    path: PathBuf,
    epoch: u64,
}

impl PageFile for SimPageHandle {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let st = self.state.lock();
        SimHandle::check_epoch(&st, self.epoch)?;
        let page = st
            .pages
            .get(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such sim page file"))?;
        let view = page.view();
        let end = offset as usize + buf.len();
        if view.len() < end {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of sim page file",
            ));
        }
        buf.copy_from_slice(&view[offset as usize..end]);
        Ok(())
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock();
        SimHandle::check_epoch(&st, self.epoch)?;
        st.page_writes += 1;
        let n = st.page_writes;
        if matches!(st.plan.fail_page_write, Some(at) if n == at) {
            return Err(io::Error::other("injected page write failure"));
        }
        let page = st.pages.entry(self.path.clone()).or_default();
        page.pending.push((offset, buf.to_vec()));
        Ok(())
    }

    fn byte_len(&self) -> io::Result<u64> {
        let st = self.state.lock();
        SimHandle::check_epoch(&st, self.epoch)?;
        Ok(st
            .pages
            .get(&self.path)
            .map_or(0, |p| p.view().len() as u64))
    }

    fn sync(&self) -> io::Result<()> {
        let mut st = self.state.lock();
        SimHandle::check_epoch(&st, self.epoch)?;
        st.page_syncs += 1;
        let n = st.page_syncs;
        let drop_pending = matches!(st.plan.fail_page_sync, Some(at) if n == at);
        let page = st.pages.entry(self.path.clone()).or_default();
        if drop_pending {
            page.pending.clear();
            return Err(io::Error::other(
                "injected page fsync failure (dirty pages dropped)",
            ));
        }
        let pending = std::mem::take(&mut page.pending);
        for (off, buf) in pending {
            apply_write(&mut page.durable, off, &buf);
        }
        Ok(())
    }
}

impl WalFs for SimFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        if !st.dirs.iter().any(|d| d == dir) {
            st.dirs.push(dir.to_path_buf());
        }
        Ok(())
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let st = self.state.lock();
        let mut names: Vec<String> = st
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        Ok(names)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        let mut st = self.state.lock();
        st.creates += 1;
        let n = st.creates;
        if matches!(st.plan.fail_create, Some(at) if n == at) {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC on create",
            ));
        }
        st.files.insert(path.to_path_buf(), SimFile::default());
        let epoch = st.epoch;
        drop(st);
        Ok(Box::new(SimHandle {
            state: self.state.clone(),
            path: path.to_path_buf(),
            epoch,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let st = self.state.lock();
        match st.files.get(path) {
            Some(f) => {
                let mut all = f.durable.clone();
                all.extend_from_slice(&f.pending);
                Ok(all)
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such sim file")),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        match st.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such sim file")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        match st.files.remove(from) {
            Some(f) => {
                st.files.insert(to.to_path_buf(), f);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such sim file")),
        }
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn open_page_file(&self, path: &Path) -> io::Result<Box<dyn PageFile>> {
        let mut st = self.state.lock();
        st.pages.entry(path.to_path_buf()).or_default();
        let epoch = st.epoch;
        drop(st);
        Ok(Box::new(SimPageHandle {
            state: self.state.clone(),
            path: path.to_path_buf(),
            epoch,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathBuf {
        PathBuf::from("/wal").join(name)
    }

    #[test]
    fn sim_fs_sync_promotes_and_crash_drops_unsynced() {
        let fs = SimFs::new();
        fs.create_dir_all(Path::new("/wal")).unwrap();
        let mut f = fs.create(&p("a")).unwrap();
        f.append(b"hello").unwrap();
        f.sync().unwrap();
        f.append(b" world").unwrap();
        // Reads before the crash see everything, like a real page cache.
        assert_eq!(fs.read(&p("a")).unwrap(), b"hello world");
        fs.crash(0);
        let after = fs.read(&p("a")).unwrap();
        // Synced prefix survives; the unsynced suffix is torn at an
        // arbitrary (seed-chosen) byte offset.
        assert!(after.starts_with(b"hello"));
        assert!(after.len() <= b"hello world".len());
        // Stale handle fails instead of resurrecting the file.
        assert!(f.append(b"x").is_err());
    }

    #[test]
    fn crash_tear_covers_every_byte_offset_across_seeds() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..64 {
            let fs = SimFs::new();
            let mut f = fs.create(&p("a")).unwrap();
            f.append(b"0123456").unwrap();
            fs.crash(seed);
            seen.insert(fs.read(&p("a")).unwrap().len());
        }
        // 8 possible tear points (0..=7); the seeded xorshift must reach
        // several of them, not collapse to one.
        assert!(seen.len() >= 4, "tear points seen: {seen:?}");
    }

    #[test]
    fn injected_short_write_leaves_a_torn_prefix() {
        let fs = SimFs::with_faults(FaultPlan {
            short_write: Some((2, 3)),
            ..FaultPlan::default()
        });
        let mut f = fs.create(&p("a")).unwrap();
        f.append(b"aaaa").unwrap();
        let err = f.append(b"bbbb").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        f.sync().unwrap();
        assert_eq!(fs.read(&p("a")).unwrap(), b"aaaabbb");
    }

    #[test]
    fn injected_fsync_failure_drops_dirty_bytes() {
        let fs = SimFs::with_faults(FaultPlan {
            fail_sync: Some(1),
            ..FaultPlan::default()
        });
        let mut f = fs.create(&p("a")).unwrap();
        f.append(b"doomed").unwrap();
        assert!(f.sync().is_err());
        // The dirty bytes are gone: a subsequent successful sync cannot
        // bring them back, which is what justifies poisoning the log.
        f.append(b"later").unwrap();
        f.sync().unwrap();
        assert_eq!(fs.read(&p("a")).unwrap(), b"later");
    }

    #[test]
    fn injected_create_failure_reports_enospc() {
        let fs = SimFs::with_faults(FaultPlan {
            fail_create: Some(1),
            ..FaultPlan::default()
        });
        let err = match fs.create(&p("a")) {
            Ok(_) => panic!("first create must hit the injected failure"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // The schedule names one operation; the next create succeeds.
        assert!(fs.create(&p("a")).is_ok());
    }

    #[test]
    fn sim_page_file_round_trips_and_sync_promotes() {
        let fs = SimFs::new();
        let f = fs.open_page_file(&p("pages.db")).unwrap();
        f.write_at(0, b"AAAA").unwrap();
        f.write_at(8, b"BBBB").unwrap();
        assert_eq!(f.byte_len().unwrap(), 12);
        let mut buf = [0u8; 4];
        f.read_at(8, &mut buf).unwrap();
        assert_eq!(&buf, b"BBBB");
        // The zero-filled gap between the two writes reads as zeros.
        f.read_at(4, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 4]);
        f.sync().unwrap();
        f.write_at(0, b"CCCC").unwrap();
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"CCCC", "pre-crash reads see pending writes");
        assert_eq!(fs.page_op_counts(), (3, 1));
    }

    #[test]
    fn sim_page_file_crash_drops_unsynced_writes() {
        let mut dropped = false;
        // Spread the seeds: the xorshift parity that picks the survivor
        // count keys off high bits, so consecutive small seeds all fall
        // on the same side.
        for seed in (0..32).map(|i| i * 17) {
            let fs = SimFs::new();
            let f = fs.open_page_file(&p("pages.db")).unwrap();
            f.write_at(0, b"OLD!").unwrap();
            f.sync().unwrap();
            f.write_at(0, b"NEW!").unwrap();
            fs.crash(seed);
            assert!(f.read_at(0, &mut [0u8; 4]).is_err(), "stale handle fails");
            let f2 = fs.open_page_file(&p("pages.db")).unwrap();
            let mut buf = [0u8; 4];
            f2.read_at(0, &mut buf).unwrap();
            // Each write is atomic: the page is wholly old or wholly new.
            assert!(&buf == b"OLD!" || &buf == b"NEW!", "torn page: {buf:?}");
            dropped |= &buf == b"OLD!";
        }
        assert!(dropped, "some seed must drop the unsynced write");
    }

    #[test]
    fn sim_page_file_crash_keeps_a_seeded_prefix_of_writes() {
        let mut survivor_counts = std::collections::BTreeSet::new();
        for seed in 0..32 {
            let fs = SimFs::new();
            let f = fs.open_page_file(&p("pages.db")).unwrap();
            f.write_at(0, b"1").unwrap();
            f.write_at(1, b"2").unwrap();
            f.write_at(2, b"3").unwrap();
            fs.crash(seed);
            let f2 = fs.open_page_file(&p("pages.db")).unwrap();
            survivor_counts.insert(f2.byte_len().unwrap());
        }
        // 4 possible outcomes (0..=3 surviving writes); the seeds must
        // reach more than one of them.
        assert!(survivor_counts.len() >= 2, "seen: {survivor_counts:?}");
    }

    #[test]
    fn injected_page_sync_failure_drops_pending_writes() {
        let fs = SimFs::with_faults(FaultPlan {
            fail_page_sync: Some(1),
            ..FaultPlan::default()
        });
        let f = fs.open_page_file(&p("pages.db")).unwrap();
        f.write_at(0, b"doomed").unwrap();
        assert!(f.sync().is_err());
        assert_eq!(f.byte_len().unwrap(), 0, "dropped writes stay dropped");
        f.write_at(0, b"later!").unwrap();
        f.sync().unwrap();
        let mut buf = [0u8; 6];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"later!");
    }

    #[test]
    fn injected_page_write_failure_leaves_no_bytes() {
        let fs = SimFs::with_faults(FaultPlan {
            fail_page_write: Some(2),
            ..FaultPlan::default()
        });
        let f = fs.open_page_file(&p("pages.db")).unwrap();
        f.write_at(0, b"ok").unwrap();
        assert!(f.write_at(2, b"no").is_err());
        assert_eq!(f.byte_len().unwrap(), 2);
    }

    #[test]
    fn std_page_file_round_trips() {
        let dir = std::env::temp_dir().join(format!("dora-pagefile-test-{}", std::process::id()));
        let fs = StdFs;
        fs.create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let f = fs.open_page_file(&path).unwrap();
        f.write_at(16, b"positioned").unwrap();
        f.sync().unwrap();
        let mut buf = [0u8; 10];
        f.read_at(16, &mut buf).unwrap();
        assert_eq!(&buf, b"positioned");
        assert_eq!(f.byte_len().unwrap(), 26);
        drop(f);
        // Re-open must not truncate.
        let f2 = fs.open_page_file(&path).unwrap();
        assert_eq!(f2.byte_len().unwrap(), 26);
        drop(f2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn std_fs_round_trips_and_lists() {
        let dir = std::env::temp_dir().join(format!("dora-io-test-{}", std::process::id()));
        let fs = StdFs;
        fs.create_dir_all(&dir).unwrap();
        let path = dir.join("seg-test.wal");
        let mut f = fs.create(&path).unwrap();
        f.append(b"abc").unwrap();
        f.sync().unwrap();
        fs.sync_dir(&dir).unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"abc");
        assert!(fs
            .list_dir(&dir)
            .unwrap()
            .contains(&"seg-test.wal".to_string()));
        fs.remove_file(&path).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
