//! Buffer pool and page store.
//!
//! The buffer pool caches fixed-size pages from a backing [`PageStore`] in a
//! bounded set of frames with clock (second-chance) eviction, mirroring the
//! role of Shore-MT's buffer manager. The paper's experiments are
//! memory-resident, so the default backing store is an in-memory page map
//! ([`MemStore`]); the same interface admits a file-backed store.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{StorageError, StorageResult};
use crate::page::{SlottedPage, PAGE_SIZE};
use crate::types::PageId;

/// Abstraction over the backing storage for pages ("the disk").
pub trait PageStore: Send + Sync {
    /// Reads a page; returns `None` if the page was never written.
    fn read_page(&self, pid: PageId) -> Option<Vec<u8>>;
    /// Writes a page back.
    fn write_page(&self, pid: PageId, data: &[u8]);
    /// Allocates a fresh page id.
    fn allocate(&self) -> PageId;
    /// Number of pages ever allocated.
    fn allocated(&self) -> u64;
}

/// In-memory page store used for the paper's memory-resident experiments.
#[derive(Default)]
pub struct MemStore {
    pages: RwLock<HashMap<PageId, Vec<u8>>>,
    next: AtomicU64,
}

impl MemStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        MemStore {
            pages: RwLock::new(HashMap::new()),
            // Page ids start at 1 so that 0 can be used as a sentinel.
            next: AtomicU64::new(1),
        }
    }
}

impl PageStore for MemStore {
    fn read_page(&self, pid: PageId) -> Option<Vec<u8>> {
        self.pages.read().get(&pid).cloned()
    }

    fn write_page(&self, pid: PageId, data: &[u8]) {
        self.pages.write().insert(pid, data.to_vec());
    }

    fn allocate(&self) -> PageId {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    fn allocated(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - 1
    }
}

struct Frame {
    pid: Option<PageId>,
    page: SlottedPage,
    dirty: bool,
    pin_count: usize,
    referenced: bool,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            pid: None,
            page: SlottedPage::new(),
            dirty: false,
            pin_count: 0,
            referenced: false,
        }
    }
}

/// Counters exposed by the buffer pool for the monitoring panel.
#[derive(Debug, Default)]
pub struct BufferStats {
    /// Page requests satisfied from a resident frame.
    pub hits: AtomicU64,
    /// Page requests that required reading from the page store.
    pub misses: AtomicU64,
    /// Dirty pages written back during eviction.
    pub evictions: AtomicU64,
}

impl BufferStats {
    /// Snapshot of (hits, misses, evictions).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

/// A bounded cache of pages with clock eviction.
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    frames: Vec<Mutex<Frame>>,
    /// Maps resident page ids to frame indexes.
    table: Mutex<HashMap<PageId, usize>>,
    clock_hand: AtomicUsize,
    stats: BufferStats,
}

impl BufferPool {
    /// Creates a pool with `capacity` frames over the given store.
    pub fn new(store: Arc<dyn PageStore>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            store,
            frames: (0..capacity).map(|_| Mutex::new(Frame::empty())).collect(),
            table: Mutex::new(HashMap::with_capacity(capacity)),
            clock_hand: AtomicUsize::new(0),
            stats: BufferStats::default(),
        }
    }

    /// Convenience constructor: in-memory store with `capacity` frames.
    pub fn in_memory(capacity: usize) -> Self {
        BufferPool::new(Arc::new(MemStore::new()), capacity)
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Buffer-pool statistics.
    pub fn stats(&self) -> &BufferStats {
        &self.stats
    }

    /// Allocates a new page in the backing store and formats it.
    pub fn allocate_page(&self) -> PageId {
        let pid = self.store.allocate();
        // Format eagerly so a subsequent fetch finds a valid slotted page.
        self.store.write_page(pid, SlottedPage::new().as_bytes());
        pid
    }

    /// Runs `f` with exclusive access to the page, writing it back if `f`
    /// reports the page dirty (returns `(result, dirty)`).
    ///
    /// This is the single access path: it pins the page (loading it into a
    /// frame if necessary), latches the frame, runs the closure, and unpins.
    pub fn with_page<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut SlottedPage) -> (R, bool),
    ) -> StorageResult<R> {
        let frame_idx = self.pin(pid)?;
        let mut frame = self.frames[frame_idx].lock();
        // The frame may have been stolen between pin() releasing the table
        // lock and us acquiring the frame latch only if pin_count reached 0,
        // which cannot happen because pin() incremented it. Assert anyway.
        debug_assert_eq!(frame.pid, Some(pid));
        let (result, dirty) = f(&mut frame.page);
        if dirty {
            frame.dirty = true;
        }
        frame.referenced = true;
        frame.pin_count -= 1;
        Ok(result)
    }

    /// Reads a page without intent to modify.
    pub fn read_page<R>(&self, pid: PageId, f: impl FnOnce(&SlottedPage) -> R) -> StorageResult<R> {
        self.with_page(pid, |p| (f(p), false))
    }

    /// Flushes every dirty resident page back to the store.
    pub fn flush_all(&self) {
        let table = self.table.lock();
        for (&pid, &idx) in table.iter() {
            let mut frame = self.frames[idx].lock();
            if frame.dirty {
                self.store.write_page(pid, frame.page.as_bytes());
                frame.dirty = false;
            }
        }
    }

    /// Pins `pid` into a frame and returns the frame index with pin_count
    /// already incremented.
    fn pin(&self, pid: PageId) -> StorageResult<usize> {
        let mut table = self.table.lock();
        if let Some(&idx) = table.get(&pid) {
            let mut frame = self.frames[idx].lock();
            frame.pin_count += 1;
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(idx);
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        // Find a victim frame with the clock algorithm while holding the
        // table lock (coarse but simple; eviction is rare in the paper's
        // memory-resident configurations).
        let capacity = self.frames.len();
        let mut scanned = 0;
        let victim = loop {
            if scanned > capacity * 2 {
                return Err(StorageError::BufferPoolFull);
            }
            let hand = self.clock_hand.fetch_add(1, Ordering::Relaxed) % capacity;
            let mut frame = self.frames[hand].lock();
            if frame.pin_count > 0 {
                scanned += 1;
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                scanned += 1;
                continue;
            }
            break hand;
        };
        let mut frame = self.frames[victim].lock();
        if let Some(old_pid) = frame.pid {
            if frame.dirty {
                self.store.write_page(old_pid, frame.page.as_bytes());
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
            table.remove(&old_pid);
        }
        let bytes = self
            .store
            .read_page(pid)
            .unwrap_or_else(|| SlottedPage::new().as_bytes().to_vec());
        debug_assert_eq!(bytes.len(), PAGE_SIZE);
        frame.page = SlottedPage::from_bytes(&bytes);
        frame.pid = Some(pid);
        frame.dirty = false;
        frame.referenced = true;
        frame.pin_count = 1;
        table.insert(pid, victim);
        Ok(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_back() {
        let pool = BufferPool::in_memory(4);
        let pid = pool.allocate_page();
        let slot = pool
            .with_page(pid, |p| (p.insert(b"record").unwrap(), true))
            .unwrap();
        let data = pool
            .read_page(pid, |p| p.get(slot).unwrap().to_vec())
            .unwrap();
        assert_eq!(data, b"record");
    }

    #[test]
    fn eviction_preserves_data() {
        // 2-frame pool, 10 pages: forces constant eviction.
        let pool = BufferPool::in_memory(2);
        let pids: Vec<_> = (0..10).map(|_| pool.allocate_page()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            pool.with_page(pid, |p| {
                p.insert(format!("page-{i}").as_bytes()).unwrap();
                ((), true)
            })
            .unwrap();
        }
        for (i, &pid) in pids.iter().enumerate() {
            let found = pool
                .read_page(pid, |p| {
                    p.iter().any(|(_, r)| r == format!("page-{i}").as_bytes())
                })
                .unwrap();
            assert!(found, "page {i} lost after eviction");
        }
        let (_, misses, evictions) = pool.stats().snapshot();
        assert!(misses >= 10);
        assert!(evictions > 0);
    }

    #[test]
    fn hit_counter_increments() {
        let pool = BufferPool::in_memory(4);
        let pid = pool.allocate_page();
        pool.read_page(pid, |_| ()).unwrap();
        pool.read_page(pid, |_| ()).unwrap();
        let (hits, _, _) = pool.stats().snapshot();
        assert!(hits >= 1);
    }

    #[test]
    fn flush_all_writes_dirty_pages() {
        let store = Arc::new(MemStore::new());
        let pool = BufferPool::new(store.clone(), 4);
        let pid = pool.allocate_page();
        pool.with_page(pid, |p| {
            p.insert(b"durable").unwrap();
            ((), true)
        })
        .unwrap();
        pool.flush_all();
        let raw = store.read_page(pid).unwrap();
        let page = SlottedPage::from_bytes(&raw);
        assert!(page.iter().any(|(_, r)| r == b"durable"));
    }

    #[test]
    fn concurrent_access_from_many_threads() {
        let pool = Arc::new(BufferPool::in_memory(8));
        let pid = pool.allocate_page();
        let mut handles = Vec::new();
        for t in 0..8 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    pool.with_page(pid, |p| {
                        p.insert(format!("{t}-{i}").as_bytes());
                        ((), true)
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let count = pool.read_page(pid, |p| p.live_records()).unwrap();
        assert!(count > 0);
    }

    #[test]
    fn memstore_allocation_is_monotonic() {
        let s = MemStore::new();
        let a = s.allocate();
        let b = s.allocate();
        assert!(b > a);
        assert_eq!(s.allocated(), 2);
        assert!(s.read_page(a).is_none());
    }
}
