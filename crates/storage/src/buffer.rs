//! Decentralized, disk-capable buffer manager.
//!
//! The pool is built so that a buffer **hit** — the overwhelmingly
//! common case — takes zero shared locks beyond one striped page-table
//! shard, and so that no path ever holds a global lock across I/O:
//!
//! * **Sharded page table.** The `PageId → frame` map is striped over a
//!   power-of-two number of shards, each its own `Mutex<HashMap>`.
//!   Pin/unpin on different pages (different shards) never contend, and
//!   a shard lock is only ever held for a map probe plus an atomic pin
//!   bump — never across I/O or a frame latch acquisition.
//! * **Reader/writer frame latches.** Each frame carries an `RwLock`
//!   over its page bytes: [`BufferPool::read_page`] runs concurrently
//!   with other readers of the same page, while
//!   [`BufferPool::with_page`] takes the latch exclusively. Pin counts,
//!   dirty bits, and the frame's page-LSN mirror are atomics so they
//!   can be read and updated without the latch.
//! * **LRU-K (K=2) eviction.** Each frame remembers the ticks of its
//!   two most recent pins; the victim is the unpinned frame with the
//!   largest backward K-distance (frames with fewer than two recorded
//!   pins are "infinite distance" and go first, oldest first). A
//!   sequential scan through a small pool therefore evicts its own
//!   one-touch pages, while a hot page pinned twice outlives any number
//!   of scans.
//! * **WAL-before-data.** Pages carry the LSN of their last mutation
//!   (stamped by the pool when a page is dirtied, persisted in the page
//!   header — see [`crate::page`]). A dirty page is never written to
//!   the page store until the WAL is durable past that LSN: eviction
//!   forces the log if it must; the background writer simply skips
//!   pages the log has not caught up to. Recovery never reads data
//!   pages, so a crash that loses page-store writes can always rebuild
//!   them from the log — the gate makes the converse (a page write the
//!   log knows nothing about) impossible.
//! * **Background writeback.** A writer thread wakes under eviction
//!   pressure (recent misses, or when half the pool is dirty) and
//!   pushes dirty, log-covered pages to the store so hot-path eviction
//!   almost always finds a clean victim and pays no synchronous write.
//!
//! Two page stores implement [`PageStore`]: [`MemStore`] (an in-memory
//! map, the default) and [`FilePageStore`] (a fixed-size page file over
//! the [`crate::io`] traits, so larger-than-memory workloads run for
//! real and faults are injectable through `SimFs`).
//!
//! The pool deliberately uses only `std::sync` primitives — no shimmed
//! crates — like the WAL and the transaction table (see
//! `shims/README.md`).

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

use crate::error::{StorageError, StorageResult};
use crate::io::{PageFile, WalFs};
use crate::page::{SlottedPage, PAGE_SIZE};
use crate::types::{Lsn, PageId};

/// Backing store under the buffer pool.
///
/// All I/O is fallible: the file-backed store surfaces real I/O errors
/// (and injected ones, via `SimFs`) as [`StorageError::PageIo`].
pub trait PageStore: Send + Sync {
    /// Reads a page's bytes, or `None` if the page was never written.
    fn read_page(&self, pid: PageId) -> StorageResult<Option<Vec<u8>>>;
    /// Writes a page's bytes (exactly [`PAGE_SIZE`] of them).
    fn write_page(&self, pid: PageId, data: &[u8]) -> StorageResult<()>;
    /// Allocates a fresh page id (ids start at 1; 0 is the "no page"
    /// sentinel).
    fn allocate(&self) -> PageId;
    /// Number of pages allocated so far.
    fn allocated(&self) -> u64;
    /// Forces written pages to stable storage (checkpoint fsync).
    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }
}

/// The buffer pool's view of the write-ahead log, for the
/// WAL-before-data gate. [`crate::wal::LogManager`] implements it.
pub trait WalGate: Send + Sync {
    /// Upper bound on the LSN of any record already appended — used to
    /// stamp pages at dirty time (the mutation's own record was
    /// appended before the page was touched, so this bounds it from
    /// above).
    fn current_lsn(&self) -> Lsn;
    /// Highest LSN known durable.
    fn flushed_lsn(&self) -> Lsn;
    /// Makes the log durable through `lsn`.
    fn force_lsn(&self, lsn: Lsn) -> StorageResult<()>;
}

fn page_io(err: std::io::Error) -> StorageError {
    StorageError::PageIo(err.to_string())
}

// ---------------------------------------------------------------------------
// Page stores
// ---------------------------------------------------------------------------

/// In-memory [`PageStore`] backed by a map ("infinitely fast disk").
pub struct MemStore {
    pages: RwLock<HashMap<PageId, Vec<u8>>>,
    next: AtomicU64,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemStore {
            pages: RwLock::new(HashMap::new()),
            next: AtomicU64::new(1),
        }
    }
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore for MemStore {
    fn read_page(&self, pid: PageId) -> StorageResult<Option<Vec<u8>>> {
        let pages = self.pages.read().unwrap_or_else(|e| e.into_inner());
        Ok(pages.get(&pid).cloned())
    }

    fn write_page(&self, pid: PageId, data: &[u8]) -> StorageResult<()> {
        let mut pages = self.pages.write().unwrap_or_else(|e| e.into_inner());
        pages.insert(pid, data.to_vec());
        Ok(())
    }

    fn allocate(&self) -> PageId {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    fn allocated(&self) -> u64 {
        self.next.load(Ordering::Relaxed).saturating_sub(1)
    }
}

/// File-backed [`PageStore`]: one fixed-size page file (`pages.db`)
/// under a directory, addressed as `offset = (pid - 1) * PAGE_SIZE`.
///
/// Built on the [`crate::io::PageFile`] surface, so it runs over real
/// files (`StdFs`) and the deterministic fault injector (`SimFs`)
/// alike. [`sync`](PageStore::sync) is called by the pool's
/// [`BufferPool::flush_all`] (i.e. at checkpoint), which is what makes
/// flushed pages durable.
pub struct FilePageStore {
    file: Box<dyn PageFile>,
    next: AtomicU64,
}

impl FilePageStore {
    /// Opens (or creates) the page file under `dir`. The allocation
    /// cursor resumes from the file length, so page ids never collide
    /// across restarts; a torn trailing partial page (crash during
    /// extension) is simply overwritten by the next allocation.
    pub fn open(fs: &dyn WalFs, dir: &Path) -> StorageResult<Self> {
        fs.create_dir_all(dir).map_err(page_io)?;
        let file = fs.open_page_file(&dir.join("pages.db")).map_err(page_io)?;
        let len = file.byte_len().map_err(page_io)?;
        let allocated = len / PAGE_SIZE as u64;
        Ok(FilePageStore {
            file,
            next: AtomicU64::new(allocated + 1),
        })
    }
}

impl PageStore for FilePageStore {
    fn read_page(&self, pid: PageId) -> StorageResult<Option<Vec<u8>>> {
        if pid == 0 {
            return Ok(None);
        }
        let offset = (pid - 1) * PAGE_SIZE as u64;
        let len = self.file.byte_len().map_err(page_io)?;
        if offset + PAGE_SIZE as u64 > len {
            return Ok(None);
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.read_at(offset, &mut buf).map_err(page_io)?;
        Ok(Some(buf))
    }

    fn write_page(&self, pid: PageId, data: &[u8]) -> StorageResult<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        let offset = (pid - 1) * PAGE_SIZE as u64;
        self.file.write_at(offset, data).map_err(page_io)
    }

    fn allocate(&self) -> PageId {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    fn allocated(&self) -> u64 {
        self.next.load(Ordering::Relaxed).saturating_sub(1)
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.sync().map_err(page_io)
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Pool counters. All atomics: sampled without any lock.
#[derive(Default)]
pub struct BufferStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    eviction_writes: AtomicU64,
    writebacks: AtomicU64,
    table_waits: AtomicU64,
    latch_waits: AtomicU64,
}

/// Point-in-time copy of [`BufferStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStatsSnapshot {
    /// Pins satisfied from a resident frame.
    pub hits: u64,
    /// Pins that had to load the page from the store.
    pub misses: u64,
    /// Pages displaced from a frame to make room.
    pub evictions: u64,
    /// Evictions that paid a synchronous store write (dirty victim the
    /// background writer had not cleaned yet).
    pub eviction_writes: u64,
    /// Dirty pages pushed to the store by the background writer.
    pub writebacks: u64,
    /// Contended page-table shard acquisitions (another thread held the
    /// shard when we arrived).
    pub table_waits: u64,
    /// Contended frame-latch acquisitions.
    pub latch_waits: u64,
}

impl BufferStats {
    /// Snapshots every counter.
    pub fn snapshot(&self) -> BufferStatsSnapshot {
        BufferStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            eviction_writes: self.eviction_writes.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            table_waits: self.table_waits.load(Ordering::Relaxed),
            latch_waits: self.latch_waits.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Latch-protected part of a frame: which page it holds and its bytes.
struct FrameData {
    /// 0 = empty frame.
    pid: PageId,
    page: SlottedPage,
}

struct Frame {
    data: RwLock<FrameData>,
    /// Pins on the frame; a pinned frame is never evicted. Updated
    /// without the latch (pinning is what *grants* the right to take
    /// the latch).
    pin_count: AtomicU32,
    dirty: AtomicBool,
    /// Mirror of the page header LSN, readable without the latch — the
    /// eviction policy and background writer use it to decide, then
    /// read the authoritative value under the latch to act.
    page_lsn: AtomicU64,
    /// LRU-K (K=2) history: global ticks of the two most recent pins.
    /// 0 = "never".
    last_tick: AtomicU64,
    prev_tick: AtomicU64,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            data: RwLock::new(FrameData {
                pid: 0,
                page: SlottedPage::new(),
            }),
            pin_count: AtomicU32::new(0),
            dirty: AtomicBool::new(false),
            page_lsn: AtomicU64::new(0),
            last_tick: AtomicU64::new(0),
            prev_tick: AtomicU64::new(0),
        }
    }
}

// ---------------------------------------------------------------------------
// Pool core
// ---------------------------------------------------------------------------

struct PoolCore {
    store: Arc<dyn PageStore>,
    gate: Option<Arc<dyn WalGate>>,
    frames: Box<[Frame]>,
    shards: Box<[Mutex<HashMap<PageId, usize>>]>,
    shard_mask: usize,
    tick: AtomicU64,
    /// Count of dirty frames (exact: every set/clear goes through an
    /// atomic swap and adjusts the counter only on a real transition).
    dirty_frames: AtomicU64,
    stats: BufferStats,
}

fn lock_mutex<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl PoolCore {
    fn shard(&self, pid: PageId) -> &Mutex<HashMap<PageId, usize>> {
        // Fibonacci hashing: page ids are sequential, so multiply-shift
        // spreads neighbours across shards.
        let h = pid.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[h as usize & self.shard_mask]
    }

    /// Locks a shard, counting the acquisition as contended if another
    /// thread held it when we arrived.
    fn lock_shard(&self, pid: PageId) -> MutexGuard<'_, HashMap<PageId, usize>> {
        let m = self.shard(pid);
        match m.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.stats.table_waits.fetch_add(1, Ordering::Relaxed);
                m.lock().unwrap_or_else(|e| e.into_inner())
            }
        }
    }

    fn read_latch(&self, idx: usize) -> RwLockReadGuard<'_, FrameData> {
        let l = &self.frames[idx].data;
        match l.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.stats.latch_waits.fetch_add(1, Ordering::Relaxed);
                l.read().unwrap_or_else(|e| e.into_inner())
            }
        }
    }

    fn write_latch(&self, idx: usize) -> RwLockWriteGuard<'_, FrameData> {
        let l = &self.frames[idx].data;
        match l.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.stats.latch_waits.fetch_add(1, Ordering::Relaxed);
                l.write().unwrap_or_else(|e| e.into_inner())
            }
        }
    }

    /// Records a pin in the frame's LRU-K history.
    fn touch(&self, idx: usize) {
        let t = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let frame = &self.frames[idx];
        let last = frame.last_tick.swap(t, Ordering::Relaxed);
        frame.prev_tick.store(last, Ordering::Relaxed);
    }

    fn flushed_lsn(&self) -> Lsn {
        self.gate.as_ref().map_or(Lsn::MAX, |g| g.flushed_lsn())
    }

    /// WAL-before-data: ensures the log is durable through `lsn` before
    /// a page stamped with it may reach the store.
    fn wal_barrier(&self, lsn: Lsn) -> StorageResult<()> {
        if let Some(gate) = &self.gate {
            if lsn > gate.flushed_lsn() {
                gate.force_lsn(lsn)?;
            }
        }
        Ok(())
    }

    fn mark_clean(&self, idx: usize) -> bool {
        let was_dirty = self.frames[idx].dirty.swap(false, Ordering::Relaxed);
        if was_dirty {
            self.dirty_frames.fetch_sub(1, Ordering::Relaxed);
        }
        was_dirty
    }

    fn mark_dirty(&self, idx: usize) {
        if !self.frames[idx].dirty.swap(true, Ordering::Relaxed) {
            self.dirty_frames.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pins `pid`, loading it into a frame if necessary. Returns the
    /// frame index with the pin already counted and **no latch held**;
    /// the pin is what keeps the frame from being stolen until
    /// [`unpin`](Self::unpin).
    fn pin(&self, pid: PageId) -> StorageResult<usize> {
        debug_assert_ne!(pid, 0, "page id 0 is the empty sentinel");
        {
            let map = self.lock_shard(pid);
            if let Some(&idx) = map.get(&pid) {
                self.frames[idx].pin_count.fetch_add(1, Ordering::Relaxed);
                drop(map);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.touch(idx);
                return Ok(idx);
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        self.load_page(pid)
    }

    fn unpin(&self, idx: usize) {
        let prev = self.frames[idx].pin_count.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "unpin without a pin");
    }

    /// Miss path: claim a victim frame, **reserve** the mapping, then
    /// read the page from the store under the frame's write latch.
    ///
    /// The reservation (publishing `pid → idx` before the store read)
    /// is load-bearing: a concurrent miss on the same page adopts this
    /// frame and waits on its latch for the bytes. If it instead did
    /// its own store read, that read could complete *before* this copy
    /// is mutated and evicted, and publish stale bytes afterwards —
    /// resurrecting the pre-mutation page (a lost update). No shard
    /// lock is ever held across the I/O; only this frame's latch is.
    fn load_page(&self, pid: PageId) -> StorageResult<usize> {
        let (idx, mut guard) = self.claim_victim()?;
        let frame = &self.frames[idx];
        {
            let mut map = self.lock_shard(pid);
            if let Some(&winner) = map.get(&pid) {
                // Someone reserved it while we were claiming; adopt the
                // winner (possibly still loading — we'll wait on its
                // latch) and put our frame back as empty.
                self.frames[winner]
                    .pin_count
                    .fetch_add(1, Ordering::Relaxed);
                drop(map);
                guard.pid = 0;
                frame.prev_tick.store(0, Ordering::Relaxed);
                frame.last_tick.store(0, Ordering::Relaxed);
                drop(guard);
                self.touch(winner);
                return Ok(winner);
            }
            guard.pid = pid;
            frame.pin_count.store(1, Ordering::Relaxed);
            let t = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
            frame.prev_tick.store(0, Ordering::Relaxed);
            frame.last_tick.store(t, Ordering::Relaxed);
            map.insert(pid, idx);
        }
        match self.store.read_page(pid) {
            Ok(bytes) => {
                guard.page = match bytes {
                    Some(b) => SlottedPage::from_bytes(&b),
                    None => SlottedPage::new(),
                };
                frame.page_lsn.store(guard.page.lsn(), Ordering::Relaxed);
                Ok(idx)
            }
            Err(e) => {
                // Roll the reservation back. Adopters that already
                // pinned keep their pins; when they latch the frame they
                // see `pid == 0` and retry their own pin (and hit this
                // same error if it persists).
                let mut map = self.lock_shard(pid);
                if map.get(&pid) == Some(&idx) {
                    map.remove(&pid);
                }
                drop(map);
                guard.pid = 0;
                drop(guard);
                self.unpin(idx);
                Err(e)
            }
        }
    }

    /// Picks and claims an eviction victim by LRU-K: empty frames
    /// first, then frames with fewer than two recorded pins (infinite
    /// backward K-distance, oldest single pin first), then the frame
    /// whose second-most-recent pin is oldest. Returns the claimed
    /// frame's write guard; the frame is unmapped (and written back if
    /// it was dirty) by the time this returns.
    fn claim_victim(&self) -> StorageResult<(usize, RwLockWriteGuard<'_, FrameData>)> {
        for round in 0..8 {
            let mut candidates: Vec<(u8, u64, usize)> = self
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.pin_count.load(Ordering::Relaxed) == 0)
                .map(|(i, f)| {
                    let last = f.last_tick.load(Ordering::Relaxed);
                    let prev = f.prev_tick.load(Ordering::Relaxed);
                    match (last, prev) {
                        (0, _) => (0u8, 0u64, i),
                        (l, 0) => (1, l, i),
                        (_, p) => (2, p, i),
                    }
                })
                .collect();
            candidates.sort_unstable();
            for (_, _, idx) in candidates {
                if let Some(guard) = self.try_claim(idx)? {
                    return Ok((idx, guard));
                }
            }
            // Everything pinned or contended; give the pinners a beat.
            if round > 0 {
                std::thread::yield_now();
            }
        }
        Err(StorageError::BufferPoolFull)
    }

    /// Attempts to claim frame `idx` for reuse. On success the frame's
    /// old page (if any) has been written back (WAL first) and
    /// unmapped, and the returned write guard owns the frame.
    fn try_claim(&self, idx: usize) -> StorageResult<Option<RwLockWriteGuard<'_, FrameData>>> {
        let frame = &self.frames[idx];
        let guard = match frame.data.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return Ok(None),
        };
        if frame.pin_count.load(Ordering::Relaxed) != 0 {
            return Ok(None);
        }
        let old_pid = guard.pid;
        if old_pid != 0 {
            // Write back *before* unmapping: a concurrent miss on
            // old_pid must never read stale store bytes while the only
            // current copy sits in this frame. A failure here leaves
            // the page mapped, dirty, and intact.
            if frame.dirty.load(Ordering::Relaxed) {
                self.wal_barrier(guard.page.lsn())?;
                self.store.write_page(old_pid, guard.page.as_bytes())?;
                self.mark_clean(idx);
                self.stats.eviction_writes.fetch_add(1, Ordering::Relaxed);
            }
            // Unmap under the shard lock. The pin re-check is
            // authoritative: the hit path bumps pins under this same
            // lock, so either it pinned first (we abort; the page stays
            // resident, merely clean now) or we unmap first (it misses
            // and reloads from the store we just wrote).
            let mut map = self.lock_shard(old_pid);
            if frame.pin_count.load(Ordering::Relaxed) != 0 {
                return Ok(None);
            }
            if map.get(&old_pid) == Some(&idx) {
                map.remove(&old_pid);
            }
            drop(map);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(Some(guard))
    }

    /// One background-writeback sweep: push dirty, log-covered,
    /// uncontended pages to the store. Never forces the WAL and never
    /// blocks on a latch — it only makes future evictions cheaper.
    fn writeback_sweep(&self) {
        let flushed = self.flushed_lsn();
        for (idx, frame) in self.frames.iter().enumerate() {
            if !frame.dirty.load(Ordering::Relaxed) {
                continue;
            }
            if frame.page_lsn.load(Ordering::Relaxed) > flushed {
                continue;
            }
            let guard = match frame.data.try_read() {
                Ok(g) => g,
                Err(_) => continue,
            };
            if guard.pid == 0 || !frame.dirty.load(Ordering::Relaxed) {
                continue;
            }
            // Authoritative LSN under the latch (the mirror may lag).
            if guard.page.lsn() > flushed {
                continue;
            }
            if self
                .store
                .write_page(guard.pid, guard.page.as_bytes())
                .is_err()
            {
                // Leave it dirty; eviction or the next sweep retries.
                continue;
            }
            if self.mark_clean(idx) {
                self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Public pool
// ---------------------------------------------------------------------------

/// The buffer pool. See the module docs for the design.
pub struct BufferPool {
    core: Arc<PoolCore>,
    shutdown: Arc<(Mutex<bool>, Condvar)>,
    writeback: Mutex<Option<std::thread::JoinHandle<()>>>,
}

const WRITEBACK_INTERVAL: Duration = Duration::from_millis(5);

impl BufferPool {
    /// Creates a pool of `capacity` frames over `store`, with no WAL
    /// gate (pages are always evictable).
    pub fn new(store: Arc<dyn PageStore>, capacity: usize) -> Self {
        Self::with_gate(store, capacity, None)
    }

    /// Creates a pool whose eviction and writeback honor the
    /// WAL-before-data gate.
    pub fn with_gate(
        store: Arc<dyn PageStore>,
        capacity: usize,
        gate: Option<Arc<dyn WalGate>>,
    ) -> Self {
        let capacity = capacity.max(1);
        let shard_count = (capacity / 4).next_power_of_two().clamp(1, 128);
        let core = Arc::new(PoolCore {
            store,
            gate,
            frames: (0..capacity).map(|_| Frame::empty()).collect(),
            shards: (0..shard_count)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            shard_mask: shard_count - 1,
            tick: AtomicU64::new(0),
            dirty_frames: AtomicU64::new(0),
            stats: BufferStats::default(),
        });
        let shutdown = Arc::new((Mutex::new(false), Condvar::new()));
        let handle = {
            let core = core.clone();
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("buffer-writeback".into())
                .spawn(move || writeback_loop(core, shutdown))
                .expect("spawn writeback thread")
        };
        BufferPool {
            core,
            shutdown,
            writeback: Mutex::new(Some(handle)),
        }
    }

    /// Creates a pool over a fresh in-memory store.
    pub fn in_memory(capacity: usize) -> Self {
        Self::new(Arc::new(MemStore::new()), capacity)
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.core.frames.len()
    }

    /// Live counters.
    pub fn stats(&self) -> &BufferStats {
        &self.core.stats
    }

    /// Number of currently dirty frames.
    pub fn dirty_frames(&self) -> u64 {
        self.core.dirty_frames.load(Ordering::Relaxed)
    }

    /// Total pages allocated in the backing store.
    pub fn allocated_pages(&self) -> u64 {
        self.core.store.allocated()
    }

    /// Whether `pid` currently occupies a frame (test/telemetry hook;
    /// the answer can be stale by the time the caller looks at it).
    pub fn is_resident(&self, pid: PageId) -> bool {
        self.core.lock_shard(pid).contains_key(&pid)
    }

    /// Allocates a fresh page in the store, eagerly formatted so a
    /// later read (possibly after eviction, possibly after restart)
    /// always sees a valid slotted page.
    pub fn allocate_page(&self) -> StorageResult<PageId> {
        let pid = self.core.store.allocate();
        self.core
            .store
            .write_page(pid, SlottedPage::new().as_bytes())?;
        Ok(pid)
    }

    /// Runs `f` with exclusive access to the page. `f` returns
    /// `(result, dirtied)`; if `dirtied`, the pool stamps the page with
    /// the WAL's current LSN (the record covering the mutation was
    /// appended before this call, so the stamp bounds it from above)
    /// and marks the frame dirty.
    pub fn with_page<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut SlottedPage) -> (R, bool),
    ) -> StorageResult<R> {
        let core = &self.core;
        let mut f = Some(f);
        loop {
            let idx = core.pin(pid)?;
            let frame = &core.frames[idx];
            let mut guard = core.write_latch(idx);
            if guard.pid != pid {
                // We adopted a reservation whose load failed and was
                // rolled back; retry from the table.
                drop(guard);
                core.unpin(idx);
                continue;
            }
            let (result, dirtied) = (f.take().expect("loop runs f once"))(&mut guard.page);
            if dirtied {
                let stamp = core.gate.as_ref().map_or(0, |g| g.current_lsn());
                if stamp > guard.page.lsn() {
                    guard.page.set_lsn(stamp);
                }
                frame.page_lsn.store(guard.page.lsn(), Ordering::Relaxed);
                core.mark_dirty(idx);
            }
            drop(guard);
            core.unpin(idx);
            return Ok(result);
        }
    }

    /// Runs `f` with shared access to the page — concurrent with other
    /// readers of the same page.
    pub fn read_page<R>(&self, pid: PageId, f: impl FnOnce(&SlottedPage) -> R) -> StorageResult<R> {
        let core = &self.core;
        let mut f = Some(f);
        loop {
            let idx = core.pin(pid)?;
            let guard = core.read_latch(idx);
            if guard.pid != pid {
                drop(guard);
                core.unpin(idx);
                continue;
            }
            let result = (f.take().expect("loop runs f once"))(&guard.page);
            drop(guard);
            core.unpin(idx);
            return Ok(result);
        }
    }

    /// Flushes every dirty page to the store (WAL first) and syncs the
    /// store. No global lock is held: the dirty set is collected from
    /// the per-frame atomics, the WAL is forced once up to the set's
    /// maximum LSN, and each page is then written under its own shared
    /// latch.
    pub fn flush_all(&self) -> StorageResult<()> {
        let core = &self.core;
        let mut dirty = Vec::new();
        let mut max_lsn: Lsn = 0;
        for (idx, frame) in core.frames.iter().enumerate() {
            if frame.dirty.load(Ordering::Relaxed) {
                dirty.push(idx);
                max_lsn = max_lsn.max(frame.page_lsn.load(Ordering::Relaxed));
            }
        }
        core.wal_barrier(max_lsn)?;
        for idx in dirty {
            let frame = &core.frames[idx];
            let guard = core.read_latch(idx);
            if guard.pid == 0 || !frame.dirty.load(Ordering::Relaxed) {
                continue;
            }
            // A mutation after the collection pass may have stamped the
            // page past the barrier; force again for this page (rare).
            core.wal_barrier(guard.page.lsn())?;
            core.store.write_page(guard.pid, guard.page.as_bytes())?;
            core.mark_clean(idx);
        }
        core.store.sync()
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        let (lock, cv) = &*self.shutdown;
        *lock_mutex(lock) = true;
        cv.notify_all();
        if let Some(handle) = lock_mutex(&self.writeback).take() {
            let _ = handle.join();
        }
    }
}

/// Background writer: wakes every few milliseconds, and sweeps only
/// under eviction pressure — recent misses (the pool is cycling) or a
/// half-dirty pool — so an all-resident workload pays nothing.
fn writeback_loop(core: Arc<PoolCore>, shutdown: Arc<(Mutex<bool>, Condvar)>) {
    let mut last_misses = 0u64;
    loop {
        {
            let (lock, cv) = &*shutdown;
            let guard = lock_mutex(lock);
            let (guard, _) = cv
                .wait_timeout(guard, WRITEBACK_INTERVAL)
                .unwrap_or_else(|e| e.into_inner());
            if *guard {
                return;
            }
        }
        if core.dirty_frames.load(Ordering::Relaxed) == 0 {
            continue;
        }
        let misses = core.stats.misses.load(Ordering::Relaxed);
        let pressure = misses != last_misses
            || core.dirty_frames.load(Ordering::Relaxed) * 2 >= core.frames.len() as u64;
        last_misses = misses;
        if pressure {
            core.writeback_sweep();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn record(tag: u8) -> Vec<u8> {
        vec![tag; 64]
    }

    #[test]
    fn allocate_write_read_back() {
        let pool = BufferPool::in_memory(4);
        let pid = pool.allocate_page().unwrap();
        let slot = pool
            .with_page(pid, |p| (p.insert(b"hello").unwrap(), true))
            .unwrap();
        let got = pool
            .read_page(pid, |p| p.get(slot).map(|r| r.to_vec()))
            .unwrap();
        assert_eq!(got.unwrap(), b"hello");
    }

    #[test]
    fn eviction_preserves_data() {
        let pool = BufferPool::in_memory(2);
        let mut pids = Vec::new();
        for i in 0..10u8 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page(pid, |p| (p.insert(&record(i)).unwrap(), true))
                .unwrap();
            pids.push(pid);
        }
        for (i, &pid) in pids.iter().enumerate() {
            let got = pool
                .read_page(pid, |p| p.get(0).map(|r| r.to_vec()))
                .unwrap()
                .unwrap();
            assert_eq!(got, record(i as u8), "page {pid} lost its record");
        }
        let snap = pool.stats().snapshot();
        assert!(snap.evictions > 0, "2-frame pool over 10 pages must evict");
    }

    #[test]
    fn hit_and_miss_counters() {
        let pool = BufferPool::in_memory(4);
        let pid = pool.allocate_page().unwrap();
        pool.with_page(pid, |p| (p.insert(b"x").unwrap(), true))
            .unwrap();
        let before = pool.stats().snapshot();
        for _ in 0..5 {
            pool.read_page(pid, |p| p.live_records()).unwrap();
        }
        let after = pool.stats().snapshot();
        assert_eq!(after.hits - before.hits, 5);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn flush_all_writes_dirty_pages_and_clears_them() {
        let store = Arc::new(MemStore::new());
        let pool = BufferPool::new(store.clone(), 8);
        let pid = pool.allocate_page().unwrap();
        pool.with_page(pid, |p| (p.insert(b"durable").unwrap(), true))
            .unwrap();
        pool.flush_all().unwrap();
        assert_eq!(pool.dirty_frames(), 0);
        let bytes = store.read_page(pid).unwrap().unwrap();
        let page = SlottedPage::from_bytes(&bytes);
        assert_eq!(page.get(0).unwrap(), b"durable");
    }

    #[test]
    fn memstore_allocation_is_monotonic() {
        let store = MemStore::new();
        let a = store.allocate();
        let b = store.allocate();
        assert!(b > a);
        assert!(a >= 1, "page id 0 is reserved");
        assert_eq!(store.allocated(), 2);
    }

    #[test]
    fn lru_k_victim_order_is_honored() {
        // 3 frames. p1 and p2 get two pins each (full K=2 history), p3
        // only one (infinite backward distance). Loading p4 must evict
        // p3; after giving p4 a second pin, loading p5 must evict the
        // full-history frame with the oldest second-most-recent pin,
        // which is p1.
        let pool = BufferPool::in_memory(3);
        let p1 = pool.allocate_page().unwrap();
        let p2 = pool.allocate_page().unwrap();
        let p3 = pool.allocate_page().unwrap();
        let p4 = pool.allocate_page().unwrap();
        let p5 = pool.allocate_page().unwrap();
        pool.read_page(p1, |_| ()).unwrap(); // p1 pinned at t1
        pool.read_page(p1, |_| ()).unwrap(); // t2 -> prev = t1
        pool.read_page(p2, |_| ()).unwrap(); // p2 at t3
        pool.read_page(p2, |_| ()).unwrap(); // t4 -> prev = t3
        pool.read_page(p3, |_| ()).unwrap(); // p3 at t5, prev = never
        pool.read_page(p4, |_| ()).unwrap(); // miss: victim must be p3
        assert!(!pool.is_resident(p3), "single-pin page evicted first");
        assert!(pool.is_resident(p1) && pool.is_resident(p2));
        pool.read_page(p4, |_| ()).unwrap(); // give p4 full history
        pool.read_page(p5, |_| ()).unwrap(); // miss: victim = oldest prev = p1
        assert!(!pool.is_resident(p1), "oldest K-distance evicted");
        assert!(pool.is_resident(p2) && pool.is_resident(p4));
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        use std::sync::mpsc;
        let pool = Arc::new(BufferPool::in_memory(2));
        let p1 = pool.allocate_page().unwrap();
        pool.with_page(p1, |p| (p.insert(b"pinned").unwrap(), true))
            .unwrap();
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let reader = {
            let pool = pool.clone();
            std::thread::spawn(move || {
                pool.read_page(p1, move |p| {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    p.get(0).map(|r| r.to_vec())
                })
                .unwrap()
            })
        };
        entered_rx.recv().unwrap();
        // With p1 pinned, every miss must recycle the single other
        // frame; none of these may claim p1's frame or time out.
        for _ in 0..6 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page(pid, |p| (p.insert(b"churn").unwrap(), true))
                .unwrap();
        }
        assert!(pool.is_resident(p1), "pinned page must stay resident");
        release_tx.send(()).unwrap();
        assert_eq!(reader.join().unwrap().unwrap(), b"pinned");
    }

    #[test]
    fn concurrent_access_from_many_threads() {
        let pool = Arc::new(BufferPool::in_memory(4));
        let mut pids = Vec::new();
        for _ in 0..16 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page(pid, |p| (p.insert(&0u64.to_le_bytes()).unwrap(), true))
                .unwrap();
            pids.push(pid);
        }
        let pids = Arc::new(pids);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let pool = pool.clone();
            let pids = pids.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = t + 1;
                for _ in 0..200 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let pid = pids[(rng % 16) as usize];
                    pool.with_page(pid, |p| {
                        let mut v = [0u8; 8];
                        v.copy_from_slice(p.get(0).unwrap());
                        let n = u64::from_le_bytes(v) + 1;
                        assert!(p.update(0, &n.to_le_bytes()));
                        ((), true)
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Exclusive frame latches + the pin protocol => no lost updates.
        let total: u64 = pids
            .iter()
            .map(|&pid| {
                pool.read_page(pid, |p| {
                    let mut v = [0u8; 8];
                    v.copy_from_slice(p.get(0).unwrap());
                    u64::from_le_bytes(v)
                })
                .unwrap()
            })
            .sum();
        assert_eq!(total, 8 * 200, "increments lost under concurrency");
    }

    /// A [`WalGate`] double that records forces and lets the test
    /// advance the flushed watermark by hand.
    struct MockGate {
        current: AtomicU64,
        flushed: AtomicU64,
        forces: AtomicU64,
    }

    impl WalGate for MockGate {
        fn current_lsn(&self) -> Lsn {
            self.current.load(Ordering::Relaxed)
        }
        fn flushed_lsn(&self) -> Lsn {
            self.flushed.load(Ordering::Relaxed)
        }
        fn force_lsn(&self, lsn: Lsn) -> StorageResult<()> {
            self.forces.fetch_add(1, Ordering::Relaxed);
            self.flushed.fetch_max(lsn, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn eviction_of_dirty_page_forces_wal_first() {
        let gate = Arc::new(MockGate {
            current: AtomicU64::new(42),
            flushed: AtomicU64::new(0),
            forces: AtomicU64::new(0),
        });
        let store = Arc::new(MemStore::new());
        let pool = BufferPool::with_gate(store.clone(), 1, Some(gate.clone()));
        let p1 = pool.allocate_page().unwrap();
        let p2 = pool.allocate_page().unwrap();
        pool.with_page(p1, |p| (p.insert(b"logged").unwrap(), true))
            .unwrap();
        // Evicting p1 (page_lsn = 42 > flushed = 0) must force first.
        pool.read_page(p2, |_| ()).unwrap();
        assert!(gate.forces.load(Ordering::Relaxed) >= 1);
        assert!(gate.flushed.load(Ordering::Relaxed) >= 42);
        let bytes = store.read_page(p1).unwrap().unwrap();
        let page = SlottedPage::from_bytes(&bytes);
        assert_eq!(page.get(0).unwrap(), b"logged");
        assert_eq!(page.lsn(), 42, "stamp persisted in the page header");
    }

    #[test]
    fn flush_all_forces_wal_before_writing() {
        let gate = Arc::new(MockGate {
            current: AtomicU64::new(7),
            flushed: AtomicU64::new(0),
            forces: AtomicU64::new(0),
        });
        let store = Arc::new(MemStore::new());
        let pool = BufferPool::with_gate(store.clone(), 4, Some(gate.clone()));
        let pid = pool.allocate_page().unwrap();
        pool.with_page(pid, |p| (p.insert(b"ck").unwrap(), true))
            .unwrap();
        pool.flush_all().unwrap();
        assert!(gate.forces.load(Ordering::Relaxed) >= 1);
        assert!(gate.flushed.load(Ordering::Relaxed) >= 7);
        assert!(store.read_page(pid).unwrap().is_some());
    }

    #[test]
    fn background_writeback_cleans_dirty_pages() {
        // No gate: everything is immediately log-covered. Dirty more
        // than half the pool to trip the pressure heuristic, then wait
        // for the writer to clean it without any flush_all call.
        let store = Arc::new(MemStore::new());
        let pool = BufferPool::new(store.clone(), 4);
        let mut pids = Vec::new();
        for i in 0..3u8 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page(pid, |p| (p.insert(&record(i)).unwrap(), true))
                .unwrap();
            pids.push(pid);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.dirty_frames() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "writeback thread never cleaned the pool"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(pool.stats().snapshot().writebacks >= 3);
        for (i, pid) in pids.iter().enumerate() {
            let bytes = store.read_page(*pid).unwrap().unwrap();
            let page = SlottedPage::from_bytes(&bytes);
            assert_eq!(page.get(0).unwrap(), &record(i as u8)[..]);
        }
    }

    #[test]
    fn background_writeback_skips_pages_the_log_has_not_covered() {
        let gate = Arc::new(MockGate {
            current: AtomicU64::new(100),
            flushed: AtomicU64::new(0),
            forces: AtomicU64::new(0),
        });
        let store = Arc::new(MemStore::new());
        let pool = BufferPool::with_gate(store.clone(), 2, Some(gate.clone()));
        let pid = pool.allocate_page().unwrap();
        pool.with_page(pid, |p| (p.insert(b"uncovered").unwrap(), true))
            .unwrap();
        // page_lsn = 100 > flushed = 0: every sweep must leave the page
        // dirty and must not force the WAL on its own.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(pool.dirty_frames(), 1);
        assert_eq!(gate.forces.load(Ordering::Relaxed), 0);
        // Once the log catches up the sweep may clean it (pressure via
        // the dirty-ratio arm: 1 dirty of 2 frames).
        gate.flushed.store(100, Ordering::Relaxed);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.dirty_frames() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "writeback never caught up after the log advanced"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn file_page_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "dora-filestore-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let fs = crate::io::StdFs;
        let (pid, slot) = {
            let store = Arc::new(FilePageStore::open(&fs, &dir).unwrap());
            let pool = BufferPool::new(store, 4);
            let pid = pool.allocate_page().unwrap();
            let slot = pool
                .with_page(pid, |p| (p.insert(b"on-disk").unwrap(), true))
                .unwrap();
            pool.flush_all().unwrap();
            (pid, slot)
        };
        let store = Arc::new(FilePageStore::open(&fs, &dir).unwrap());
        assert_eq!(store.allocated(), 1);
        let pool = BufferPool::new(store, 4);
        let got = pool
            .read_page(pid, |p| p.get(slot).map(|r| r.to_vec()))
            .unwrap();
        assert_eq!(got.unwrap(), b"on-disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_page_store_over_simfs_reports_injected_errors() {
        use crate::io::{FaultPlan, SimFs};
        let fs = SimFs::with_faults(FaultPlan {
            fail_page_write: Some(1),
            ..FaultPlan::default()
        });
        let store = FilePageStore::open(&fs, Path::new("/pages")).unwrap();
        let pid = store.allocate();
        let err = store.write_page(pid, &[0u8; PAGE_SIZE]).unwrap_err();
        assert!(matches!(err, StorageError::PageIo(_)), "got {err:?}");
        // The schedule names one op; the next write succeeds.
        store.write_page(pid, &[1u8; PAGE_SIZE]).unwrap();
        assert_eq!(store.read_page(pid).unwrap().unwrap()[0], 1);
    }

    #[test]
    fn sharded_table_spreads_pages() {
        let pool = BufferPool::in_memory(64);
        assert!(pool.core.shards.len() > 1);
        let mut seen = std::collections::HashSet::new();
        for pid in 1..=64u64 {
            let h = pid.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
            seen.insert(h as usize & pool.core.shard_mask);
        }
        assert!(seen.len() > 4, "sequential pids collapse onto one shard");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Concurrent pin/evict/read/write churn through a pool smaller
        /// than the page set: every increment lands exactly once (no
        /// lost updates across eviction), and every read sees a
        /// well-formed record.
        #[test]
        fn concurrent_pin_evict_churn(seed in 0u64..1000, threads in 2usize..5) {
            let pool = Arc::new(BufferPool::in_memory(4));
            let n_pages = 12usize;
            let mut pids = Vec::new();
            for _ in 0..n_pages {
                let pid = pool.allocate_page().unwrap();
                pool.with_page(pid, |p| (p.insert(&0u64.to_le_bytes()).unwrap(), true)).unwrap();
                pids.push(pid);
            }
            let pids = Arc::new(pids);
            let per_thread = 150usize;
            let mut handles = Vec::new();
            for t in 0..threads {
                let pool = pool.clone();
                let pids = pids.clone();
                let mut rng = seed.wrapping_mul(31).wrapping_add(t as u64) | 1;
                handles.push(std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let pid = pids[(rng % n_pages as u64) as usize];
                        if rng % 3 == 0 {
                            let v = pool.read_page(pid, |p| p.get(0).map(|r| r.len())).unwrap();
                            assert_eq!(v, Some(8));
                        } else {
                            pool.with_page(pid, |p| {
                                let mut v = [0u8; 8];
                                v.copy_from_slice(p.get(0).unwrap());
                                let n = u64::from_le_bytes(v) + 1;
                                assert!(p.update(0, &n.to_le_bytes()));
                                ((), true)
                            }).unwrap();
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let total: u64 = pids.iter().map(|&pid| {
                pool.read_page(pid, |p| {
                    let mut v = [0u8; 8];
                    v.copy_from_slice(p.get(0).unwrap());
                    u64::from_le_bytes(v)
                }).unwrap()
            }).sum();
            let snap = pool.stats().snapshot();
            prop_assert!(snap.evictions > 0, "churn must actually evict");
            // Replay the per-thread rng streams to count writes exactly.
            let expected = {
                let mut count = 0u64;
                for t in 0..threads {
                    let mut rng = seed.wrapping_mul(31).wrapping_add(t as u64) | 1;
                    for _ in 0..per_thread {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        if rng % 3 != 0 { count += 1; }
                    }
                }
                count
            };
            prop_assert_eq!(total, expected, "increments lost under churn");
        }
    }
}
