//! Centralized lock manager (hierarchical two-phase locking).
//!
//! This is the component the paper identifies as the scalability bottleneck
//! of conventional (thread-to-transaction) execution: every logical lock
//! acquisition and release enters latched critical sections in a shared
//! lock table. The conventional engine in `dora-engine-conv` uses this
//! manager for every record access; the DORA engine bypasses it entirely,
//! relying on per-partition local lock tables instead.
//!
//! The manager implements the standard hierarchical modes (IS, IX, S, SIX,
//! X) over two lock granularities (table, key), FIFO waiting with condition
//! variables, lock upgrades, waits-for-graph deadlock detection and
//! timeouts. Every latch acquisition is counted so experiments can report
//! "critical sections entered per transaction" (experiment E6).

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{StorageError, StorageResult};
use crate::types::{Key, TableId, TxnId};

/// Hierarchical lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intention shared (table level).
    IS,
    /// Intention exclusive (table level).
    IX,
    /// Shared.
    S,
    /// Shared with intention exclusive.
    SIX,
    /// Exclusive.
    X,
}

impl LockMode {
    /// Standard compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IS, IS)
                | (IS, IX)
                | (IS, S)
                | (IS, SIX)
                | (IX, IS)
                | (IX, IX)
                | (S, IS)
                | (S, S)
                | (SIX, IS)
        )
    }

    /// True when holding `self` already satisfies a request for `req`.
    pub fn covers(self, req: LockMode) -> bool {
        use LockMode::*;
        match self {
            X => true,
            SIX => matches!(req, SIX | S | IX | IS),
            S => matches!(req, S | IS),
            IX => matches!(req, IX | IS),
            IS => matches!(req, IS),
        }
    }

    /// Least upper bound in the lock lattice (used for upgrades, e.g.
    /// S + IX = SIX).
    pub fn join(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (X, _) | (_, X) => X,
            (SIX, _) | (_, SIX) => SIX,
            (S, IX) | (IX, S) => SIX,
            (S, _) | (_, S) => S,
            (IX, _) | (_, IX) => IX,
            _ => IS,
        }
    }
}

/// What is being locked.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LockTarget {
    /// A whole table (intention locks and table scans).
    Table(TableId),
    /// A single logical key within a table (record-level locking).
    Key(TableId, Key),
}

impl LockTarget {
    fn bucket(&self, nbuckets: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % nbuckets
    }
}

#[derive(Debug, Clone)]
struct Granted {
    txn: TxnId,
    mode: LockMode,
}

#[derive(Debug, Clone)]
struct Waiter {
    txn: TxnId,
    /// Mode requested by the waiter; kept for debugging/monitoring dumps.
    #[allow(dead_code)]
    mode: LockMode,
}

#[derive(Debug, Default)]
struct LockEntry {
    granted: Vec<Granted>,
    waiters: VecDeque<Waiter>,
}

impl LockEntry {
    /// Whether `txn` could be granted `mode` right now, ignoring its own
    /// already-granted lock (upgrade path).
    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        self.granted
            .iter()
            .filter(|g| g.txn != txn)
            .all(|g| g.mode.compatible(mode))
    }

    fn holders_blocking(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        self.granted
            .iter()
            .filter(|g| g.txn != txn && !g.mode.compatible(mode))
            .map(|g| g.txn)
            .collect()
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        if let Some(g) = self.granted.iter_mut().find(|g| g.txn == txn) {
            g.mode = g.mode.join(mode);
        } else {
            self.granted.push(Granted { txn, mode });
        }
    }

    fn is_empty(&self) -> bool {
        self.granted.is_empty() && self.waiters.is_empty()
    }
}

/// Counters describing lock-manager activity.
///
/// `critical_sections` counts every acquisition of a latch protecting the
/// shared lock-table state — this is the quantity DORA eliminates.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Lock requests that were granted (including immediately).
    pub acquisitions: AtomicU64,
    /// Latch acquisitions on shared lock-manager state.
    pub critical_sections: AtomicU64,
    /// Requests that had to block at least once.
    pub waits: AtomicU64,
    /// Requests aborted as deadlock victims.
    pub deadlocks: AtomicU64,
    /// Requests that timed out.
    pub timeouts: AtomicU64,
    /// Lock releases.
    pub releases: AtomicU64,
}

/// Point-in-time copy of [`LockStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LockStatsSnapshot {
    /// Granted lock requests.
    pub acquisitions: u64,
    /// Latch (critical-section) entries on shared lock state.
    pub critical_sections: u64,
    /// Requests that blocked.
    pub waits: u64,
    /// Deadlock victims.
    pub deadlocks: u64,
    /// Timed-out requests.
    pub timeouts: u64,
    /// Lock releases.
    pub releases: u64,
}

impl LockStats {
    /// Takes a snapshot of the counters.
    pub fn snapshot(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            critical_sections: self.critical_sections.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
        }
    }
}

struct Bucket {
    entries: Mutex<HashMap<LockTarget, LockEntry>>,
    condvar: Condvar,
}

/// The centralized lock manager.
pub struct LockManager {
    buckets: Vec<Bucket>,
    /// Waits-for graph for deadlock detection (txn -> set of txns it waits on).
    waits_for: Mutex<HashMap<TxnId, HashSet<TxnId>>>,
    /// Targets held per transaction, for release-all at commit/abort.
    held: Mutex<HashMap<TxnId, Vec<LockTarget>>>,
    stats: LockStats,
    timeout: Duration,
}

impl LockManager {
    /// Creates a lock manager with the default number of latch-protected
    /// hash buckets and a 500 ms wait timeout.
    pub fn new() -> Self {
        Self::with_config(64, Duration::from_millis(500))
    }

    /// Creates a lock manager with explicit bucket count and wait timeout.
    pub fn with_config(nbuckets: usize, timeout: Duration) -> Self {
        assert!(nbuckets > 0);
        LockManager {
            buckets: (0..nbuckets)
                .map(|_| Bucket {
                    entries: Mutex::new(HashMap::new()),
                    condvar: Condvar::new(),
                })
                .collect(),
            waits_for: Mutex::new(HashMap::new()),
            held: Mutex::new(HashMap::new()),
            stats: LockStats::default(),
            timeout,
        }
    }

    /// Lock-manager counters.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    fn enter_cs(&self) {
        self.stats.critical_sections.fetch_add(1, Ordering::Relaxed);
    }

    /// Acquires `mode` on `target` on behalf of `txn`, blocking (with
    /// deadlock detection and timeout) if necessary.
    pub fn lock(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> StorageResult<()> {
        let bucket = &self.buckets[target.bucket(self.buckets.len())];
        self.enter_cs();
        let mut entries = bucket.entries.lock();
        let entry = entries.entry(target.clone()).or_default();

        // Already covered by an existing grant?
        if let Some(g) = entry.granted.iter().find(|g| g.txn == txn) {
            if g.mode.covers(mode) {
                return Ok(());
            }
        }

        // Immediate grant: compatible with every other holder and no one is
        // already queued (FIFO fairness), unless this is an upgrade, which
        // jumps the queue to avoid trivial upgrade/queue deadlocks.
        let is_upgrade = entry.granted.iter().any(|g| g.txn == txn);
        if entry.grantable(txn, mode) && (entry.waiters.is_empty() || is_upgrade) {
            entry.grant(txn, mode);
            drop(entries);
            self.record_held(txn, target);
            self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }

        // Must wait. Register in the waits-for graph and run deadlock
        // detection before sleeping.
        self.stats.waits.fetch_add(1, Ordering::Relaxed);
        let blockers = entry.holders_blocking(txn, mode);
        entry.waiters.push_back(Waiter { txn, mode });
        drop(entries);

        self.enter_cs();
        {
            let mut wf = self.waits_for.lock();
            wf.entry(txn).or_default().extend(blockers.iter().copied());
            if Self::has_cycle(&wf, txn) {
                wf.remove(&txn);
                drop(wf);
                self.cancel_wait(bucket, &target, txn);
                self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::Deadlock(txn));
            }
        }

        // Sleep until grantable, deadline exceeded, or deadlock.
        let deadline = std::time::Instant::now() + self.timeout;
        let mut entries = bucket.entries.lock();
        loop {
            let entry = entries.entry(target.clone()).or_default();
            let first_waiter_is_us = entry.waiters.front().map(|w| w.txn) == Some(txn);
            let is_upgrade = entry.granted.iter().any(|g| g.txn == txn);
            if entry.grantable(txn, mode) && (first_waiter_is_us || is_upgrade) {
                entry.waiters.retain(|w| w.txn != txn);
                entry.grant(txn, mode);
                drop(entries);
                self.clear_waits(txn);
                self.record_held(txn, target);
                self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            // Refresh waits-for edges: the set of blockers may have changed.
            let blockers = entry.holders_blocking(txn, mode);
            {
                self.enter_cs();
                let mut wf = self.waits_for.lock();
                let e = wf.entry(txn).or_default();
                e.clear();
                e.extend(blockers.iter().copied());
                if Self::has_cycle(&wf, txn) {
                    wf.remove(&txn);
                    drop(wf);
                    entries
                        .entry(target.clone())
                        .or_default()
                        .waiters
                        .retain(|w| w.txn != txn);
                    drop(entries);
                    bucket.condvar.notify_all();
                    self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
                    return Err(StorageError::Deadlock(txn));
                }
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                entries
                    .entry(target.clone())
                    .or_default()
                    .waiters
                    .retain(|w| w.txn != txn);
                drop(entries);
                self.clear_waits(txn);
                bucket.condvar.notify_all();
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::LockTimeout(txn));
            }
            self.enter_cs();
            bucket.condvar.wait_for(&mut entries, deadline - now);
        }
    }

    /// Releases every lock held by `txn` (called at commit/abort, per
    /// strict two-phase locking).
    pub fn unlock_all(&self, txn: TxnId) {
        let targets = {
            self.enter_cs();
            self.held.lock().remove(&txn).unwrap_or_default()
        };
        for target in targets {
            let bucket = &self.buckets[target.bucket(self.buckets.len())];
            self.enter_cs();
            let mut entries = bucket.entries.lock();
            if let Some(entry) = entries.get_mut(&target) {
                entry.granted.retain(|g| g.txn != txn);
                entry.waiters.retain(|w| w.txn != txn);
                if entry.is_empty() {
                    entries.remove(&target);
                }
                self.stats.releases.fetch_add(1, Ordering::Relaxed);
            }
            drop(entries);
            bucket.condvar.notify_all();
        }
        self.clear_waits(txn);
    }

    /// Number of locks currently held by `txn`.
    pub fn held_count(&self, txn: TxnId) -> usize {
        self.held.lock().get(&txn).map(|v| v.len()).unwrap_or(0)
    }

    fn record_held(&self, txn: TxnId, target: LockTarget) {
        self.enter_cs();
        let mut held = self.held.lock();
        let v = held.entry(txn).or_default();
        if !v.contains(&target) {
            v.push(target);
        }
    }

    fn cancel_wait(&self, bucket: &Bucket, target: &LockTarget, txn: TxnId) {
        self.enter_cs();
        let mut entries = bucket.entries.lock();
        if let Some(entry) = entries.get_mut(target) {
            entry.waiters.retain(|w| w.txn != txn);
            if entry.is_empty() {
                entries.remove(target);
            }
        }
        drop(entries);
        bucket.condvar.notify_all();
    }

    fn clear_waits(&self, txn: TxnId) {
        self.enter_cs();
        let mut wf = self.waits_for.lock();
        wf.remove(&txn);
        for (_, edges) in wf.iter_mut() {
            edges.remove(&txn);
        }
    }

    /// DFS cycle check from `start` in the waits-for graph.
    fn has_cycle(graph: &HashMap<TxnId, HashSet<TxnId>>, start: TxnId) -> bool {
        let mut stack: Vec<TxnId> = graph
            .get(&start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut visited = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == start {
                return true;
            }
            if visited.insert(t) {
                if let Some(next) = graph.get(&t) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key_target(t: TableId, k: i64) -> LockTarget {
        LockTarget::Key(t, vec![crate::types::Value::BigInt(k)])
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(IS.compatible(IX));
        assert!(IX.compatible(IX));
        assert!(S.compatible(S));
        assert!(!S.compatible(X));
        assert!(!X.compatible(IS));
        assert!(SIX.compatible(IS));
        assert!(!SIX.compatible(S));
        assert!(!SIX.compatible(SIX));
    }

    #[test]
    fn covers_and_join() {
        use LockMode::*;
        assert!(X.covers(S));
        assert!(S.covers(IS));
        assert!(!S.covers(X));
        assert!(!IX.covers(S));
        assert_eq!(S.join(IX), SIX);
        assert_eq!(IS.join(IX), IX);
        assert_eq!(S.join(X), X);
        assert_eq!(IS.join(IS), IS);
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.lock(1, key_target(1, 10), LockMode::S).unwrap();
        lm.lock(2, key_target(1, 10), LockMode::S).unwrap();
        assert_eq!(lm.held_count(1), 1);
        assert_eq!(lm.held_count(2), 1);
        lm.unlock_all(1);
        lm.unlock_all(2);
        assert_eq!(lm.held_count(1), 0);
    }

    #[test]
    fn exclusive_blocks_until_release() {
        let lm = Arc::new(LockManager::new());
        lm.lock(1, key_target(1, 5), LockMode::X).unwrap();
        let lm2 = lm.clone();
        let handle = std::thread::spawn(move || lm2.lock(2, key_target(1, 5), LockMode::X));
        std::thread::sleep(Duration::from_millis(50));
        lm.unlock_all(1);
        assert!(handle.join().unwrap().is_ok());
        let snap = lm.stats().snapshot();
        assert!(snap.waits >= 1);
        assert!(snap.acquisitions >= 2);
    }

    #[test]
    fn reacquiring_covered_lock_is_noop() {
        let lm = LockManager::new();
        lm.lock(1, key_target(1, 1), LockMode::X).unwrap();
        lm.lock(1, key_target(1, 1), LockMode::S).unwrap();
        lm.lock(1, key_target(1, 1), LockMode::X).unwrap();
        assert_eq!(lm.held_count(1), 1);
    }

    #[test]
    fn upgrade_s_to_x_when_sole_holder() {
        let lm = LockManager::new();
        lm.lock(1, key_target(1, 2), LockMode::S).unwrap();
        lm.lock(1, key_target(1, 2), LockMode::X).unwrap();
        // Another reader must now block (and time out with a short timeout).
        let lm2 = LockManager::with_config(8, Duration::from_millis(50));
        lm2.lock(1, key_target(1, 2), LockMode::X).unwrap();
        assert!(matches!(
            lm2.lock(2, key_target(1, 2), LockMode::S),
            Err(StorageError::LockTimeout(2))
        ));
    }

    #[test]
    fn deadlock_detected() {
        let lm = Arc::new(LockManager::with_config(8, Duration::from_secs(5)));
        lm.lock(1, key_target(1, 100), LockMode::X).unwrap();
        lm.lock(2, key_target(1, 200), LockMode::X).unwrap();
        let lm1 = lm.clone();
        let h1 = std::thread::spawn(move || lm1.lock(1, key_target(1, 200), LockMode::X));
        std::thread::sleep(Duration::from_millis(50));
        // This request completes the cycle 1 -> 2 -> 1; one of the two
        // requests must fail with Deadlock (not hang until timeout).
        let r2 = lm.lock(2, key_target(1, 100), LockMode::X);
        let r1 = h1.join().unwrap();
        let deadlocked = [&r1, &r2]
            .iter()
            .filter(|r| matches!(r, Err(StorageError::Deadlock(_))))
            .count();
        assert!(deadlocked >= 1, "r1={r1:?} r2={r2:?}");
        lm.unlock_all(1);
        lm.unlock_all(2);
        assert!(lm.stats().snapshot().deadlocks >= 1);
    }

    #[test]
    fn critical_sections_are_counted() {
        let lm = LockManager::new();
        let before = lm.stats().snapshot().critical_sections;
        lm.lock(1, LockTarget::Table(3), LockMode::IX).unwrap();
        lm.lock(1, key_target(3, 9), LockMode::X).unwrap();
        lm.unlock_all(1);
        let after = lm.stats().snapshot().critical_sections;
        assert!(after > before, "lock/unlock must enter critical sections");
    }

    #[test]
    fn fifo_fairness_prevents_writer_starvation() {
        // txn 1 holds S; txn 2 queues for X; txn 3 then asks for S and must
        // NOT jump ahead of the queued writer.
        let lm = Arc::new(LockManager::with_config(8, Duration::from_secs(2)));
        lm.lock(1, key_target(1, 7), LockMode::S).unwrap();
        let lm_w = lm.clone();
        let writer = std::thread::spawn(move || lm_w.lock(2, key_target(1, 7), LockMode::X));
        std::thread::sleep(Duration::from_millis(50));
        let lm_r = lm.clone();
        let reader = std::thread::spawn(move || lm_r.lock(3, key_target(1, 7), LockMode::S));
        std::thread::sleep(Duration::from_millis(50));
        // Release the original reader: the writer should get the lock.
        lm.unlock_all(1);
        writer.join().unwrap().unwrap();
        // Now release the writer so the queued reader can finish.
        lm.unlock_all(2);
        reader.join().unwrap().unwrap();
        lm.unlock_all(3);
    }

    #[test]
    fn many_threads_disjoint_keys_all_succeed() {
        let lm = Arc::new(LockManager::new());
        let mut handles = Vec::new();
        for t in 0..16u64 {
            let lm = lm.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100i64 {
                    let k = key_target(1, t as i64 * 1000 + i);
                    lm.lock(t, k, LockMode::X).unwrap();
                }
                lm.unlock_all(t);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = lm.stats().snapshot();
        assert_eq!(snap.acquisitions, 1600);
        assert_eq!(snap.deadlocks, 0);
    }

    #[test]
    fn contended_hot_key_serializes_correctly() {
        // All threads increment a shared counter protected only by the lock
        // manager; the final count proves mutual exclusion.
        let lm = Arc::new(LockManager::with_config(16, Duration::from_secs(10)));
        // Plain load + store (not fetch_add): increments are lost unless the
        // lock manager actually serializes the critical section.
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = lm.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let txn = t * 1000 + i;
                    lm.lock(txn, key_target(9, 42), LockMode::X).unwrap();
                    let old = counter.load(Ordering::SeqCst);
                    std::thread::yield_now();
                    counter.store(old + 1, Ordering::SeqCst);
                    lm.unlock_all(txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 400);
    }
}
