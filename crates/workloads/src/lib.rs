//! # dora-workloads
//!
//! OLTP workload definitions driving both execution engines — the paper's
//! experimental fuel.
//!
//! Each workload is expressed **twice** over the shared substrate: (a) a
//! conventional [`TxnRequest`](dora_engine_conv::TxnRequest)-shaped body
//! for the centralized-locking engine and (b) a DORA
//! [`FlowGraph`](dora_core::action::FlowGraph) decomposition into
//! partition-aligned actions separated by rendezvous points — plus a
//! loader that populates a [`Database`](dora_storage::Database) at a
//! given scale factor, a routing-table preset for the DORA side, and a
//! deterministic request mix. The benchmark harness in `dora-bench`
//! consumes both forms to A/B the engines; see `docs/architecture.md`.
//!
//! Shipped workloads:
//!
//! * [`transfer`] — the synthetic multi-partition account-transfer stream
//!   (uniform and cross-partition mixes, the secondary-action audit) that
//!   drives the throughput and critical-section figures.
//! * [`tatp`] — the paper's headline benchmark: the four-table telecom
//!   schema, all seven TATP transactions in both forms, the standard
//!   80/16/4 mix with the spec's expected-failure semantics, Zipf-skew
//!   and roaming-handoff mix variants for the `load_balancing_skew` and
//!   `access_patterns` benches, and a referential-integrity audit.
//!
//! The [`harness`] module runs either form serially (no engine, no
//! scheduling) so the differential oracle in `tests/` and the
//! decomposition-equivalence proptests can compare the DORA
//! decomposition, the conventional body, and a single-threaded model
//! interpreter transaction by transaction. TPC-C (order entry, routed by
//! warehouse id) remains an open item (see ROADMAP.md).

#![warn(missing_docs)]

pub mod harness;
pub mod tatp;
pub mod transfer;

pub use dora_core;
pub use dora_engine_conv;
pub use dora_storage;
