//! # dora-workloads
//!
//! OLTP workload definitions driving both execution engines — the paper's
//! experimental fuel.
//!
//! **Planned role.** This crate will host the two benchmarks the paper
//! evaluates with, each expressed twice over the shared substrate:
//!
//! * **TATP** (telecom): `GetSubscriberData`, `GetNewDestination`,
//!   `GetAccessData`, `UpdateSubscriberData`, `UpdateLocation`,
//!   `InsertCallForwarding`, `DeleteCallForwarding` — short, index-heavy
//!   transactions whose subscriber-id routing field aligns perfectly with
//!   DORA partitioning.
//! * **TPC-C** (order entry): `NewOrder`, `Payment`, `OrderStatus`,
//!   `Delivery`, `StockLevel` over the nine-table schema, routed by
//!   warehouse id.
//!
//! For each transaction the crate provides (a) a conventional
//! [`TxnRequest`](dora_engine_conv::TxnRequest)-shaped body and (b) a DORA
//! [`FlowGraph`](dora_core::action::FlowGraph) decomposition into
//! partition-aligned actions separated by rendezvous points, plus loaders
//! that populate a [`Database`](dora_storage::Database) at a given scale
//! factor and routing-table presets for the DORA side. The benchmark
//! harness in `dora-bench` consumes both forms to A/B the engines; see
//! `docs/architecture.md` for where this sits in the workspace.
//!
//! The first implemented workload is [`transfer`]: a multi-partition
//! account-transfer stream (both engine forms, loader, routing preset,
//! and a deterministic request mix) that `dora-bench` drives for the
//! throughput and critical-section figures. TATP and TPC-C remain open
//! items (see ROADMAP.md).

#![warn(missing_docs)]

pub mod transfer;

pub use dora_core;
pub use dora_engine_conv;
pub use dora_storage;
