//! Serial replay harness: runs either transaction form on the calling
//! thread, with no engine underneath.
//!
//! The differential oracle and the decomposition-equivalence proptests
//! need to execute a [`FlowGraph`] and a [`TxnRequest`] *deterministically*
//! — same phase order, no worker scheduling, no retries — so that any
//! disagreement between the two forms is a decomposition bug, never a
//! concurrency artifact. The harness walks the flow graph exactly the way
//! the DORA executor does (phase by phase, actions in spec order, the
//! final empty phase committing), and runs a conventional body exactly
//! the way the conventional engine does (once; an error aborts), but both
//! on one thread against an otherwise-idle database.

use dora_core::action::FlowGraph;
use dora_core::executor::DORA_POLICY;
use dora_engine_conv::TxnRequest;
use dora_storage::db::Database;
use dora_storage::trace::WorkerCtx;

/// Outcome of one serially-replayed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialOutcome {
    /// Whether the transaction committed.
    pub committed: bool,
    /// The abort reason (engine-identical formatting), when it did not.
    pub reason: Option<String>,
}

impl SerialOutcome {
    fn committed() -> Self {
        SerialOutcome {
            committed: true,
            reason: None,
        }
    }

    fn aborted(reason: String) -> Self {
        SerialOutcome {
            committed: false,
            reason: Some(reason),
        }
    }
}

/// Replays `flow` to completion on the calling thread, mirroring the DORA
/// executor's semantics: phase actions run in spec order, each phase's
/// outputs feed the next generator, an empty phase from the **last**
/// generator commits, and an empty phase with generators still queued is
/// a flow-graph bug that aborts. Abort reasons use the executor's
/// formatting (`e.to_string()`, `commit failed: …`), so they compare
/// byte-for-byte against engine outcomes.
pub fn run_flow_serial(db: &Database, flow: FlowGraph) -> SerialOutcome {
    let txn = db.begin();
    let ctx = WorkerCtx::untraced(0);
    let abort = |reason: String| {
        db.abort_policy(txn, DORA_POLICY)
            .expect("serial abort must succeed");
        SerialOutcome::aborted(reason)
    };

    let mut phase = flow.first;
    let mut gens = flow.next.into_iter();
    loop {
        let mut outputs = Vec::with_capacity(phase.len());
        for mut spec in phase {
            match spec.body.run(db, txn, &ctx) {
                Ok(out) => outputs.push(out),
                Err(e) => return abort(e.to_string()),
            }
        }
        match gens.next() {
            Some(gen) => match gen(&outputs) {
                Ok(next) if next.is_empty() => {
                    if gens.len() > 0 {
                        return abort(
                            "flow graph produced an empty phase with later phases queued"
                                .to_string(),
                        );
                    }
                    break;
                }
                Ok(next) => phase = next,
                Err(e) => return abort(e.to_string()),
            },
            None => break,
        }
    }
    match db.commit_policy(txn, DORA_POLICY) {
        Ok(()) => SerialOutcome::committed(),
        Err(e) => abort(format!("commit failed: {e}")),
    }
}

/// Runs the conventional `request` body once on the calling thread (no
/// retry loop — serially there is nothing to retry against), committing
/// on `Ok` and aborting with the engine's reason formatting on `Err`.
pub fn run_request_serial(db: &Database, request: &TxnRequest) -> SerialOutcome {
    let txn = db.begin();
    let ctx = WorkerCtx::untraced(0);
    match (request.body)(db, txn, &ctx) {
        Ok(()) => match db.commit(txn) {
            Ok(()) => SerialOutcome::committed(),
            Err(e) => {
                db.abort(txn).expect("serial abort must succeed");
                SerialOutcome::aborted(format!("commit failed: {e}"))
            }
        },
        Err(e) => {
            db.abort(txn).expect("serial abort must succeed");
            SerialOutcome::aborted(e.to_string())
        }
    }
}

/// Convenience: replay `flow` and return just the digest-relevant pieces
/// for equivalence checks (committed flag and reason).
pub fn outcome_pair(outcome: &SerialOutcome) -> (bool, Option<&str>) {
    (outcome.committed, outcome.reason.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_core::action::ActionSpec;
    use dora_storage::error::StorageError;
    use dora_storage::schema::{ColumnDef, TableSchema};
    use dora_storage::types::{DataType, Value};

    fn db_with_table() -> (Database, dora_storage::types::TableId) {
        let db = Database::default();
        let t = db
            .create_table(TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("k", DataType::BigInt),
                    ColumnDef::new("v", DataType::BigInt),
                ],
                vec![0],
            ))
            .unwrap();
        (db, t)
    }

    #[test]
    fn flow_phases_chain_and_commit() {
        let (db, t) = db_with_table();
        let flow = FlowGraph::new(
            "chain",
            vec![ActionSpec::write(t, 1, move |db, txn, _| {
                db.insert(
                    txn,
                    t,
                    vec![Value::BigInt(1), Value::BigInt(10)],
                    DORA_POLICY,
                )?;
                Ok(vec![Value::BigInt(1)])
            })],
        )
        .then(move |outputs| {
            assert_eq!(outputs, [[Value::BigInt(1)]]);
            Ok(vec![ActionSpec::write(t, 2, move |db, txn, _| {
                db.insert(
                    txn,
                    t,
                    vec![Value::BigInt(2), Value::BigInt(20)],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            })])
        });
        let out = run_flow_serial(&db, flow);
        assert!(out.committed, "{out:?}");
        assert_eq!(db.row_count(t).unwrap(), 2);
    }

    #[test]
    fn flow_abort_rolls_back_earlier_phases() {
        let (db, t) = db_with_table();
        let flow = FlowGraph::new(
            "abort",
            vec![ActionSpec::write(t, 1, move |db, txn, _| {
                db.insert(
                    txn,
                    t,
                    vec![Value::BigInt(1), Value::BigInt(10)],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            })],
        )
        .then(|_| Err(StorageError::Aborted("nope".into())));
        let out = run_flow_serial(&db, flow);
        assert_eq!(out.reason.as_deref(), Some("transaction aborted: nope"));
        assert_eq!(db.row_count(t).unwrap(), 0, "insert must roll back");
    }

    #[test]
    fn empty_mid_flow_phase_is_a_bug_not_a_commit() {
        let (db, _) = db_with_table();
        let flow = FlowGraph::new("bug", vec![])
            .then(|_| Ok(vec![]))
            .then(|_| panic!("later generator must never run"));
        let out = run_flow_serial(&db, flow);
        assert!(!out.committed);
        assert!(out.reason.unwrap().contains("empty phase"));
    }

    #[test]
    fn request_commit_and_abort() {
        let (db, t) = db_with_table();
        let ok = TxnRequest::new("ok", move |db, txn, _| {
            db.insert(
                txn,
                t,
                vec![Value::BigInt(7), Value::BigInt(70)],
                dora_engine_conv::CONV_POLICY,
            )?;
            Ok(())
        });
        assert!(run_request_serial(&db, &ok).committed);
        let bad = TxnRequest::new("bad", |_, _, _| Err(StorageError::Aborted("denied".into())));
        let out = run_request_serial(&db, &bad);
        assert_eq!(
            outcome_pair(&out),
            (false, Some("transaction aborted: denied"))
        );
        assert_eq!(db.row_count(t).unwrap(), 1);
    }
}
