//! The multi-partition **account transfer** workload.
//!
//! The first real workload wired into `dora-bench`: a bank-style table of
//! accounts and a stream of `Transfer(from, to, amount)` transactions,
//! each touching **two** routing keys that usually live on different
//! partitions. It stresses exactly what the paper measures — lock-manager
//! critical sections on the conventional side, cross-partition rendezvous
//! on the DORA side — while staying small enough to serve as a unit-test
//! fixture.
//!
//! Every transaction exists in both execution forms:
//!
//! * [`transfer_request`] — a conventional [`TxnRequest`] body that reads
//!   both balances and writes both sides under centralized locking;
//! * [`transfer_flow`] — the DORA [`FlowGraph`]: phase 1 reads both
//!   balances on their owning partitions (write intents, so the locks are
//!   held through the rendezvous), the RVP checks funds, phase 2 writes
//!   both sides.
//!
//! The **balance audit** ([`audit_flow`] / [`audit_request`]) adds a
//! secondary-read mix: a read-only transaction summing a whole account
//! range *without* touching the routing field — on DORA a non-aligned
//! [`ActionSpec::secondary`] action, on the conventional engine a plain
//! request body. Both forms read through the storage layer's validated
//! (versioned) API under `LockingPolicy::Bypass`, so the two engines run
//! the identical lock-free snapshot protocol and the A/B comparison stays
//! apples-to-apples. A consistent snapshot of transfer-only history always
//! sums to the conserved total, which makes the audit self-checking.
//!
//! [`TransferWorkload`] owns the schema/loader/routing preset and
//! [`TransferMix`] generates a deterministic request stream, so two
//! engines can be driven with byte-identical inputs (optionally
//! interleaving audits via [`TransferMix::with_ops`] /
//! [`TransferMix::next_op`]).

use dora_core::action::{ActionSpec, FlowGraph};
use dora_core::executor::DORA_POLICY;
use dora_core::local_lock::LockClass;
use dora_core::routing::{RoutingRule, RoutingTable};
use dora_engine_conv::{TxnRequest, CONV_POLICY};
use dora_storage::db::{Database, LockingPolicy};
use dora_storage::error::StorageError;
use dora_storage::schema::{ColumnDef, TableSchema};
use dora_storage::types::{DataType, TableId, Value};

/// Schema, loader, and routing preset for the transfer workload.
#[derive(Debug, Clone, Copy)]
pub struct TransferWorkload {
    /// Number of accounts loaded (keys `0..accounts`).
    pub accounts: i64,
    /// Balance every account starts with.
    pub initial_balance: i64,
}

impl Default for TransferWorkload {
    fn default() -> Self {
        TransferWorkload {
            accounts: 1024,
            initial_balance: 1_000,
        }
    }
}

impl TransferWorkload {
    /// Creates and populates `accounts(id BIGINT, balance BIGINT)`,
    /// returning the table id.
    pub fn load(&self, db: &Database) -> TableId {
        let t = db
            .create_table(TableSchema::new(
                "accounts",
                vec![
                    ColumnDef::new("id", DataType::BigInt),
                    ColumnDef::new("balance", DataType::BigInt),
                ],
                vec![0],
            ))
            .expect("create accounts table");
        let txn = db.begin();
        for i in 0..self.accounts {
            db.insert(
                txn,
                t,
                vec![Value::BigInt(i), Value::BigInt(self.initial_balance)],
                CONV_POLICY,
            )
            .expect("load account row");
        }
        db.commit(txn).expect("commit load");
        t
    }

    /// A uniform routing rule splitting the key space over `partitions`
    /// logical partitions owned by as many workers.
    pub fn routing(&self, table: TableId, partitions: usize) -> RoutingTable {
        let mut rt = RoutingTable::new();
        rt.set_rule(RoutingRule::uniform(
            table,
            0,
            0,
            self.accounts.max(1) - 1,
            partitions,
            partitions,
        ));
        rt
    }

    /// The conserved quantity: sum of all balances at load time (and, if
    /// the engines are correct, at any later time).
    pub fn total_balance(&self) -> i64 {
        self.accounts * self.initial_balance
    }

    /// Sum of all balances currently in the table.
    pub fn current_total(&self, db: &Database, table: TableId) -> i64 {
        db.scan(table)
            .expect("scan accounts")
            .iter()
            .map(|row| row[1].as_i64().expect("balance column"))
            .sum()
    }
}

/// The transfer as a **routing-aware** DORA flow graph — what the paper's
/// designer tooling produces when it knows the partitioning.
///
/// When both accounts live on the same partition the whole transfer
/// becomes a single multi-key action: one queue hop, locks taken
/// atomically in one partition-local table, no rendezvous fan-out, no
/// finish broadcast. Only genuinely cross-partition transfers pay the
/// two-phase RVP protocol of [`transfer_flow`]. The conventional engine
/// cannot exploit this distinction — every access goes through the
/// centralized lock manager either way — which is precisely the
/// asymmetry the paper measures.
pub fn transfer_flow_routed(
    routing: &RoutingTable,
    t: TableId,
    from: i64,
    to: i64,
    amount: i64,
) -> FlowGraph {
    if routing.owner_of(t, from) != routing.owner_of(t, to) {
        return transfer_flow(t, from, to, amount);
    }
    FlowGraph::new(
        "TransferLocal",
        vec![ActionSpec::multi(
            t,
            vec![(from, LockClass::Write), (to, LockClass::Write)],
            move |db, txn, ctx| {
                ctx.record(t, from, true);
                ctx.record(t, to, true);
                let from_row = db
                    .get(txn, t, &[Value::BigInt(from)], DORA_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                let from_balance = from_row[1].as_i64().ok_or(StorageError::NotFound)?;
                if from_balance < amount {
                    return Err(StorageError::Aborted("insufficient funds".into()));
                }
                let to_row = db
                    .get(txn, t, &[Value::BigInt(to)], DORA_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                let to_balance = to_row[1].as_i64().ok_or(StorageError::NotFound)?;
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(from)],
                    &[(1, Value::BigInt(from_balance - amount))],
                    DORA_POLICY,
                )?;
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(to)],
                    &[(1, Value::BigInt(to_balance + amount))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            },
        )],
    )
}

/// The transfer as a DORA flow graph: phase 1 reads both balances under
/// write intents on their own partitions, the RVP checks funds, phase 2
/// writes both sides. Outputs reach the generator in action order
/// (`outputs[0]` is the `from` read) regardless of completion order.
pub fn transfer_flow(t: TableId, from: i64, to: i64, amount: i64) -> FlowGraph {
    FlowGraph::new(
        "Transfer",
        vec![
            ActionSpec::write(t, from, move |db, txn, ctx| {
                ctx.record(t, from, true);
                let row = db
                    .get(txn, t, &[Value::BigInt(from)], DORA_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                Ok(vec![row[1].clone()])
            }),
            ActionSpec::write(t, to, move |db, txn, ctx| {
                ctx.record(t, to, true);
                let row = db
                    .get(txn, t, &[Value::BigInt(to)], DORA_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                Ok(vec![row[1].clone()])
            }),
        ],
    )
    .then(move |outputs| {
        let from_balance = outputs[0][0].as_i64().ok_or(StorageError::NotFound)?;
        let to_balance = outputs[1][0].as_i64().ok_or(StorageError::NotFound)?;
        if from_balance < amount {
            return Err(StorageError::Aborted("insufficient funds".into()));
        }
        Ok(vec![
            ActionSpec::write(t, from, move |db, txn, _| {
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(from)],
                    &[(1, Value::BigInt(from_balance - amount))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            }),
            ActionSpec::write(t, to, move |db, txn, _| {
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(to)],
                    &[(1, Value::BigInt(to_balance + amount))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            }),
        ])
    })
}

/// The same transfer as a conventional transaction body (centralized
/// locking, re-runnable for the engine's deadlock retries).
pub fn transfer_request(t: TableId, from: i64, to: i64, amount: i64) -> TxnRequest {
    TxnRequest::new("Transfer", move |db, txn, ctx| {
        ctx.record(t, from, true);
        let from_row = db
            .get(txn, t, &[Value::BigInt(from)], CONV_POLICY)?
            .ok_or(StorageError::NotFound)?;
        let from_balance = from_row[1].as_i64().ok_or(StorageError::NotFound)?;
        if from_balance < amount {
            return Err(StorageError::Aborted("insufficient funds".into()));
        }
        ctx.record(t, to, true);
        let to_row = db
            .get(txn, t, &[Value::BigInt(to)], CONV_POLICY)?
            .ok_or(StorageError::NotFound)?;
        let to_balance = to_row[1].as_i64().ok_or(StorageError::NotFound)?;
        db.update(
            txn,
            t,
            &[Value::BigInt(from)],
            &[(1, Value::BigInt(from_balance - amount))],
            CONV_POLICY,
        )?;
        db.update(
            txn,
            t,
            &[Value::BigInt(to)],
            &[(1, Value::BigInt(to_balance + amount))],
            CONV_POLICY,
        )?;
        Ok(())
    })
}

/// Sums the balances of accounts `[lo, hi]` through the validated read
/// path and checks the conserved total when one is expected. The sum of a
/// *consistent* snapshot always equals the loaded total (transfers
/// conserve it), so a mismatch is a torn or dirty read — surfaced as a
/// non-retryable internal error that fails tests and benches loudly.
fn validated_balance_sum(
    db: &Database,
    txn: dora_storage::types::TxnId,
    t: TableId,
    lo: i64,
    hi: i64,
    expected_total: Option<i64>,
) -> Result<i64, StorageError> {
    // Bypass on BOTH engines: the audit's consistency comes from record
    // versioning, not locks — the identical protocol either way.
    let rows = db.scan_validated(
        txn,
        t,
        &[Value::BigInt(lo)],
        &[Value::BigInt(hi)],
        LockingPolicy::Bypass,
    )?;
    let total: i64 = rows
        .iter()
        .map(|row| row[1].as_i64().ok_or(StorageError::NotFound))
        .sum::<Result<i64, _>>()?;
    if let Some(expected) = expected_total {
        if total != expected {
            return Err(StorageError::Internal(format!(
                "balance audit observed a torn total: {total} != {expected}"
            )));
        }
    }
    Ok(total)
}

/// The balance audit as a DORA flow graph: one **secondary** (non-aligned)
/// action scanning accounts `[lo, hi]` through
/// [`Database::scan_validated`](dora_storage::db::Database::scan_validated).
/// The executor may park the action on a conflicting writer's partition
/// and re-run it (the validated-read/park protocol); a committed audit
/// therefore proves a consistent committed snapshot was observed. With
/// `expected_total` set, an inconsistent sum aborts with a distinctive
/// "torn total" reason instead of committing.
pub fn audit_flow(t: TableId, lo: i64, hi: i64, expected_total: Option<i64>) -> FlowGraph {
    FlowGraph::new(
        "BalanceAudit",
        vec![ActionSpec::secondary(t, move |db, txn, _| {
            let total = validated_balance_sum(db, txn, t, lo, hi, expected_total)?;
            Ok(vec![Value::BigInt(total)])
        })],
    )
}

/// The same balance audit as a conventional transaction body. It reads
/// through the identical validated API (lock-free, `Bypass`): a
/// [`StorageError::ReadUncommitted`] conflict is retryable, so the
/// conventional engine's retry loop plays the role of DORA's park/re-run.
pub fn audit_request(t: TableId, lo: i64, hi: i64, expected_total: Option<i64>) -> TxnRequest {
    TxnRequest::new("BalanceAudit", move |db, txn, _| {
        validated_balance_sum(db, txn, t, lo, hi, expected_total)?;
        Ok(())
    })
}

/// One operation drawn from a [`TransferMix`] stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOp {
    /// Move `amount` from account `from` to account `to`.
    Transfer {
        /// Source account.
        from: i64,
        /// Destination account.
        to: i64,
        /// Amount moved.
        amount: i64,
    },
    /// Audit the full account range with a secondary validated read.
    Audit,
}

/// A deterministic stream of `(from, to, amount)` transfer parameters.
///
/// Uses an xorshift generator seeded per client so several client threads
/// can each draw an independent, reproducible stream — the same inputs
/// drive both engines in the benches.
///
/// A **locality** can be configured, mirroring how real OLTP payments
/// behave (TPC-C's Payment touches a remote warehouse ~15% of the time):
/// with probability `locality_pct`/100 the destination account is drawn
/// from the same uniform partition block as the source, so a
/// routing-aware flow ([`transfer_flow_routed`]) stays partition-local.
#[derive(Debug, Clone)]
pub struct TransferMix {
    accounts: i64,
    state: u64,
    partitions: usize,
    locality_pct: u64,
    audit_pct: u64,
}

impl TransferMix {
    /// A fully uniform stream over `accounts` keys (no locality); distinct
    /// `seed`s give distinct streams.
    pub fn new(accounts: i64, seed: u64) -> Self {
        Self::with_locality(accounts, seed, 1, 0)
    }

    /// A stream where `locality_pct`% of transfers stay inside the
    /// source's partition block (the blocks of
    /// [`RoutingRule::uniform`] over `partitions` partitions).
    pub fn with_locality(accounts: i64, seed: u64, partitions: usize, locality_pct: u64) -> Self {
        Self::with_ops(accounts, seed, partitions, locality_pct, 0)
    }

    /// A stream where, additionally, `audit_pct`% of the drawn operations
    /// are [`TransferOp::Audit`]s — the secondary-read mix that exercises
    /// the validated-read/park path under write contention. Audits only
    /// surface through [`TransferMix::next_op`]; the plain
    /// [`TransferMix::next_transfer`] stream is unchanged.
    pub fn with_ops(
        accounts: i64,
        seed: u64,
        partitions: usize,
        locality_pct: u64,
        audit_pct: u64,
    ) -> Self {
        TransferMix {
            accounts: accounts.max(2),
            // xorshift must not start at 0; fold the seed away from it.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            partitions: partitions.max(1),
            locality_pct: locality_pct.min(100),
            audit_pct: audit_pct.min(100),
        }
    }

    /// Draws the next operation: an audit with probability `audit_pct`%,
    /// otherwise the next transfer of the stream.
    pub fn next_op(&mut self) -> TransferOp {
        if self.audit_pct > 0 && self.next_u64() % 100 < self.audit_pct {
            return TransferOp::Audit;
        }
        let (from, to, amount) = self.next_transfer();
        TransferOp::Transfer { from, to, amount }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// The uniform-rule block containing `key`: `[lo, hi]` inclusive,
    /// matching the boundaries [`RoutingRule::uniform`] derives.
    fn block_of(&self, key: i64) -> (i64, i64) {
        let parts = self.partitions as i64;
        let idx = (key * parts) / self.accounts;
        let lo = (self.accounts * idx) / parts;
        let hi = (self.accounts * (idx + 1)) / parts - 1;
        (lo, hi.min(self.accounts - 1))
    }

    /// Draws the next transfer: two distinct accounts and a small amount.
    pub fn next_transfer(&mut self) -> (i64, i64, i64) {
        let from = (self.next_u64() % self.accounts as u64) as i64;
        let local = self.next_u64() % 100 < self.locality_pct;
        let (lo, hi) = if local && self.partitions > 1 {
            self.block_of(from)
        } else {
            (0, self.accounts - 1)
        };
        // A single-key block degenerates to a forced neighbor; the clamp
        // below keeps `to` in range (such a transfer is simply
        // cross-partition).
        let span = (hi - lo + 1).max(2);
        let mut to = lo + (self.next_u64() % span as u64) as i64;
        if to == from {
            to = lo + (to - lo + 1) % span;
        }
        if to >= self.accounts {
            to = from - 1;
        }
        let amount = (self.next_u64() % 3) as i64 + 1;
        (from, to, amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use dora_core::executor::{DoraEngine, DoraEngineConfig};
    use dora_engine_conv::{ConvEngine, ConvEngineConfig};

    #[test]
    fn mix_is_deterministic_and_well_formed() {
        let mut a = TransferMix::new(64, 7);
        let mut b = TransferMix::new(64, 7);
        let mut c = TransferMix::new(64, 8);
        let mut diverged = false;
        for _ in 0..256 {
            let ta = a.next_transfer();
            assert_eq!(ta, b.next_transfer(), "same seed, same stream");
            if ta != c.next_transfer() {
                diverged = true;
            }
            let (from, to, amount) = ta;
            assert!(from != to, "transfer endpoints must differ");
            assert!((0..64).contains(&from) && (0..64).contains(&to));
            assert!((1..=3).contains(&amount));
        }
        assert!(diverged, "different seeds must give different streams");
    }

    #[test]
    fn both_engine_forms_agree_on_state_and_conserve_total() {
        let wl = TransferWorkload {
            accounts: 32,
            initial_balance: 100,
        };
        let dora_db = Arc::new(Database::default());
        let conv_db = Arc::new(Database::default());
        let dora_t = wl.load(&dora_db);
        let conv_t = wl.load(&conv_db);

        let dora = DoraEngine::new(
            dora_db.clone(),
            wl.routing(dora_t, 2),
            DoraEngineConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let conv = ConvEngine::new(
            conv_db.clone(),
            ConvEngineConfig {
                workers: 2,
                max_retries: 10,
            },
        );

        let mut mix = TransferMix::new(wl.accounts, 42);
        for _ in 0..40 {
            let (from, to, amount) = mix.next_transfer();
            assert!(dora
                .execute(transfer_flow(dora_t, from, to, amount))
                .is_committed());
            assert!(conv
                .execute(transfer_request(conv_t, from, to, amount))
                .is_committed());
        }

        assert_eq!(wl.current_total(&dora_db, dora_t), wl.total_balance());
        assert_eq!(wl.current_total(&conv_db, conv_t), wl.total_balance());
        // Identical inputs serially applied: identical final states.
        let rows = |db: &Database, t| {
            let mut r: Vec<(i64, i64)> = db
                .scan(t)
                .unwrap()
                .into_iter()
                .map(|row| (row[0].as_i64().unwrap(), row[1].as_i64().unwrap()))
                .collect();
            r.sort_unstable();
            r
        };
        assert_eq!(rows(&dora_db, dora_t), rows(&conv_db, conv_t));

        dora.shutdown();
        conv.shutdown();
    }

    #[test]
    fn locality_mix_keeps_transfers_inside_partition_blocks() {
        let wl = TransferWorkload {
            accounts: 64,
            initial_balance: 100,
        };
        let routing = wl.routing(1, 4);
        let mut local_mix = TransferMix::with_locality(64, 3, 4, 100);
        for _ in 0..256 {
            let (from, to, _) = local_mix.next_transfer();
            assert_ne!(from, to);
            assert!((0..64).contains(&from) && (0..64).contains(&to));
            assert_eq!(
                routing.owner_of(1, from),
                routing.owner_of(1, to),
                "100% locality must stay partition-local ({from} -> {to})"
            );
        }
        // 0% locality over 4 partitions is mostly cross-partition.
        let mut cross_mix = TransferMix::with_locality(64, 3, 4, 0);
        let cross = (0..256)
            .filter(|_| {
                let (from, to, _) = cross_mix.next_transfer();
                routing.owner_of(1, from) != routing.owner_of(1, to)
            })
            .count();
        assert!(cross > 128, "uniform picks should usually cross: {cross}");
    }

    #[test]
    fn routed_flow_collapses_local_transfers_to_one_action() {
        let wl = TransferWorkload {
            accounts: 64,
            initial_balance: 100,
        };
        let db = Arc::new(Database::default());
        let t = wl.load(&db);
        let routing = wl.routing(t, 4);
        // Keys 1 and 2 share partition 0; keys 1 and 63 do not.
        let local = transfer_flow_routed(&routing, t, 1, 2, 5);
        assert_eq!(local.phase_count(), 1);
        assert_eq!(local.first_phase_len(), 1);
        let cross = transfer_flow_routed(&routing, t, 1, 63, 5);
        assert_eq!(cross.phase_count(), 2);
        assert_eq!(cross.first_phase_len(), 2);

        // Both shapes move the money and conserve the total.
        let e = DoraEngine::new(
            db.clone(),
            routing.clone(),
            DoraEngineConfig {
                workers: 4,
                ..Default::default()
            },
        );
        assert!(e
            .execute(transfer_flow_routed(&e.routing(), t, 1, 2, 5))
            .is_committed());
        assert!(e
            .execute(transfer_flow_routed(&e.routing(), t, 1, 63, 7))
            .is_committed());
        assert_eq!(wl.current_total(&db, t), wl.total_balance());
        let read = |id: i64| {
            let txn = db.begin();
            let row = db
                .get(txn, t, &[Value::BigInt(id)], DORA_POLICY)
                .unwrap()
                .unwrap();
            db.commit(txn).unwrap();
            row[1].as_i64().unwrap()
        };
        assert_eq!(read(1), 100 - 5 - 7);
        assert_eq!(read(2), 105);
        assert_eq!(read(63), 107);
        // Local transfers bounce on funds like cross ones do.
        assert!(!e
            .execute(transfer_flow_routed(&e.routing(), t, 3, 4, 999))
            .is_committed());
        assert_eq!(wl.current_total(&db, t), wl.total_balance());
        e.shutdown();
    }

    #[test]
    fn audit_mix_draws_deterministic_audits() {
        let mut none = TransferMix::with_ops(64, 5, 4, 50, 0);
        assert!((0..128).all(|_| matches!(none.next_op(), TransferOp::Transfer { .. })));
        let mut all = TransferMix::with_ops(64, 5, 4, 50, 100);
        assert!((0..128).all(|_| all.next_op() == TransferOp::Audit));
        let mut a = TransferMix::with_ops(64, 5, 4, 50, 20);
        let mut b = TransferMix::with_ops(64, 5, 4, 50, 20);
        let audits = (0..256)
            .filter(|_| {
                let op = a.next_op();
                assert_eq!(op, b.next_op(), "same seed, same op stream");
                op == TransferOp::Audit
            })
            .count();
        assert!(
            (20..100).contains(&audits),
            "~20% of 256 ops should be audits: {audits}"
        );
    }

    #[test]
    fn balance_audit_commits_with_the_conserved_total_on_both_engines() {
        let wl = TransferWorkload {
            accounts: 32,
            initial_balance: 100,
        };
        let dora_db = Arc::new(Database::default());
        let conv_db = Arc::new(Database::default());
        let dora_t = wl.load(&dora_db);
        let conv_t = wl.load(&conv_db);
        let dora = DoraEngine::new(
            dora_db.clone(),
            wl.routing(dora_t, 2),
            DoraEngineConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let conv = ConvEngine::new(conv_db.clone(), ConvEngineConfig::default());

        // Interleave transfers and audits; a correct audit commits, and an
        // audit given a wrong expectation aborts with the torn marker
        // (proving the self-check is wired through both engines).
        let mut mix = TransferMix::new(wl.accounts, 11);
        for _ in 0..10 {
            let (from, to, amount) = mix.next_transfer();
            assert!(dora
                .execute(transfer_flow(dora_t, from, to, amount))
                .is_committed());
            assert!(conv
                .execute(transfer_request(conv_t, from, to, amount))
                .is_committed());
            let expected = Some(wl.total_balance());
            assert!(dora
                .execute(audit_flow(dora_t, 0, wl.accounts - 1, expected))
                .is_committed());
            assert!(conv
                .execute(audit_request(conv_t, 0, wl.accounts - 1, expected))
                .is_committed());
        }
        assert!(dora.stats().secondary >= 10);
        let wrong = dora.execute(audit_flow(dora_t, 0, wl.accounts - 1, Some(-1)));
        assert!(
            matches!(&wrong, dora_core::executor::TxnOutcome::Aborted { reason } if reason.contains("torn")),
            "{wrong:?}"
        );
        let wrong = conv.execute(audit_request(conv_t, 0, wl.accounts - 1, Some(-1)));
        assert!(!wrong.is_committed());
        dora.shutdown();
        conv.shutdown();
    }

    #[test]
    fn insufficient_funds_aborts_both_forms() {
        let wl = TransferWorkload {
            accounts: 8,
            initial_balance: 10,
        };
        let dora_db = Arc::new(Database::default());
        let conv_db = Arc::new(Database::default());
        let dora_t = wl.load(&dora_db);
        let conv_t = wl.load(&conv_db);
        let dora = DoraEngine::new(
            dora_db.clone(),
            wl.routing(dora_t, 2),
            DoraEngineConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let conv = ConvEngine::new(conv_db.clone(), ConvEngineConfig::default());
        assert!(!dora
            .execute(transfer_flow(dora_t, 1, 2, 999))
            .is_committed());
        assert!(!conv
            .execute(transfer_request(conv_t, 1, 2, 999))
            .is_committed());
        assert_eq!(wl.current_total(&dora_db, dora_t), wl.total_balance());
        assert_eq!(wl.current_total(&conv_db, conv_t), wl.total_balance());
        dora.shutdown();
        conv.shutdown();
    }
}
