//! The **TATP** telecom workload — the paper's headline benchmark.
//!
//! TATP (Telecom Application Transaction Processing, née TM-1) models a
//! mobile carrier's Home Location Register: four tables keyed by
//! subscriber id and seven short, index-heavy transactions. It is the
//! workload the paper evaluates DORA with, and it partitions perfectly:
//! every table's routing field is the subscriber id, so almost every
//! transaction is a single-partition flow — exactly the access
//! predictability thread-to-data execution exploits.
//!
//! # Schema
//!
//! * `tatp_subscriber(s_id, sub_nbr, bit_1, msc_location, vlr_location)`
//! * `tatp_access_info(s_id, ai_type, data1, data2, data3, data4)` —
//!   1–4 rows per subscriber, `ai_type ∈ {1..4}`
//! * `tatp_special_facility(s_id, sf_type, is_active, error_cntrl,
//!   data_a, data_b)` — 1–4 rows per subscriber, ~85% active
//! * `tatp_call_forwarding(s_id, sf_type, start_time, end_time, numberx)`
//!   — 0–3 rows per special facility, `start_time ∈ {0, 8, 16}`
//!
//! (The reference schema carries ten `bit_*`/`hex_*`/`byte2_*` filler
//! columns; one representative of each class keeps rows small without
//! changing any transaction's access shape.)
//!
//! # Transactions
//!
//! Every transaction exists in **both** execution forms, built from one
//! [`TatpOp`] value so the engines consume byte-identical inputs:
//!
//! * [`request_of`] — the conventional [`TxnRequest`] body (centralized
//!   locking, re-runnable for deadlock retries);
//! * [`flow_of`] — the DORA [`FlowGraph`] decomposition into
//!   partition-aligned per-table actions separated by rendezvous points.
//!
//! The spec's **expected failures** (a missing call-forwarding row, an
//! absent `ai_type`, a duplicate insert) abort cleanly with a reason
//! carrying the [`MISS`] marker — they are part of the benchmark's
//! semantics (TATP reports them as a failure *rate*), never errors. Both
//! forms produce identical abort reasons, which is what the differential
//! oracle in `tests/tatp_differential.rs` checks per transaction.
//!
//! Call-forwarding **range reads** go through
//! [`Database::scan_validated`] under [`LockingPolicy::Bypass`] in *both*
//! forms, so the engines run the identical lock-free snapshot protocol
//! (the DORA form additionally holds the partition-local `(table, s_id)`
//! read intent, which serializes same-subscriber churn — see the oracle
//! for why that closes the membership gap for TATP's access shapes).
//!
//! [`TatpMix`] draws a deterministic operation stream with the standard
//! 80/16/4 read/update/insert-delete split, optionally Zipf-skewed (the
//! `load_balancing_skew` bench) or restricted to a key block (the
//! oracle's disjoint per-client streams), plus a roaming-handoff variant
//! of `UpdateLocation` whose companion read can be steered local or
//! remote (the `access_patterns` bench).

use std::sync::{Arc, Mutex};

use dora_core::action::{ActionSpec, FlowGraph};
use dora_core::executor::DORA_POLICY;
use dora_core::routing::{RoutingRule, RoutingTable};
use dora_engine_conv::{TxnRequest, CONV_POLICY};
use dora_storage::db::{Database, LockingPolicy};
use dora_storage::error::{StorageError, StorageResult};
use dora_storage::schema::{ColumnDef, TableSchema};
use dora_storage::trace::WorkerCtx;
use dora_storage::types::{DataType, TableId, TxnId, Value};

/// Marker embedded in the abort reason of every **expected** TATP failure
/// (missing rows, duplicate inserts). The oracle and the bench driver use
/// it to tell benchmark semantics from genuine errors.
pub const MISS: &str = "tatp-miss";

fn miss(what: &str) -> StorageError {
    StorageError::Aborted(format!("{MISS}: {what}"))
}

/// Table ids of one loaded TATP database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TatpTables {
    /// `tatp_subscriber`.
    pub subscriber: TableId,
    /// `tatp_access_info`.
    pub access_info: TableId,
    /// `tatp_special_facility`.
    pub special_facility: TableId,
    /// `tatp_call_forwarding`.
    pub call_forwarding: TableId,
}

/// Row counts of the four tables (loader output, invariant checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TatpCounts {
    /// Rows in `tatp_subscriber`.
    pub subscriber: usize,
    /// Rows in `tatp_access_info`.
    pub access_info: usize,
    /// Rows in `tatp_special_facility`.
    pub special_facility: usize,
    /// Rows in `tatp_call_forwarding`.
    pub call_forwarding: usize,
}

/// Schema, loader, and routing preset for TATP.
///
/// `subscribers` is the scale factor (the spec's "population size"); the
/// loader streams batched transactions, so multi-million-subscriber
/// databases load without a single giant undo list.
#[derive(Debug, Clone, Copy)]
pub struct TatpWorkload {
    /// Number of subscribers loaded (s_id `0..subscribers`).
    pub subscribers: i64,
    /// Seed for the loader's deterministic row fan-out (access-info,
    /// special-facility and call-forwarding cardinalities).
    pub seed: u64,
}

impl Default for TatpWorkload {
    fn default() -> Self {
        TatpWorkload {
            subscribers: 1_000,
            seed: 42,
        }
    }
}

/// The spec's 15-digit subscriber number: `s_id` zero-padded.
pub fn sub_nbr(s_id: i64) -> String {
    format!("{s_id:015}")
}

impl TatpWorkload {
    /// Creates and populates the four TATP tables, returning their ids.
    pub fn load(&self, db: &Database) -> TatpTables {
        let tables = self.create_tables(db);
        let mut rng = Xorshift::new(self.seed);
        // Batched load: one transaction per subscriber block bounds the
        // undo list and commits as the load streams (millions of
        // subscribers never build one giant transaction).
        const BATCH: i64 = 1_024;
        let mut s = 0;
        while s < self.subscribers {
            let txn = db.begin();
            let hi = (s + BATCH).min(self.subscribers);
            for s_id in s..hi {
                self.load_subscriber(db, txn, tables, s_id, &mut rng);
            }
            db.commit_policy(txn, LockingPolicy::Bypass)
                .expect("commit TATP load batch");
            s = hi;
        }
        tables
    }

    /// Creates the four TATP tables WITHOUT populating them. Recovery
    /// paths use this to rebuild the catalog before replaying a WAL
    /// (DDL is not logged); [`TatpWorkload::load`] layers the population
    /// on top for fresh databases.
    pub fn create_tables(&self, db: &Database) -> TatpTables {
        let subscriber = db
            .create_table(TableSchema::new(
                "tatp_subscriber",
                vec![
                    ColumnDef::new("s_id", DataType::BigInt),
                    ColumnDef::new("sub_nbr", DataType::Varchar(15)),
                    ColumnDef::new("bit_1", DataType::Bool),
                    ColumnDef::new("msc_location", DataType::BigInt),
                    ColumnDef::new("vlr_location", DataType::BigInt),
                ],
                vec![0],
            ))
            .expect("create tatp_subscriber");
        let access_info = db
            .create_table(TableSchema::new(
                "tatp_access_info",
                vec![
                    ColumnDef::new("s_id", DataType::BigInt),
                    ColumnDef::new("ai_type", DataType::BigInt),
                    ColumnDef::new("data1", DataType::BigInt),
                    ColumnDef::new("data2", DataType::BigInt),
                    ColumnDef::new("data3", DataType::Varchar(3)),
                    ColumnDef::new("data4", DataType::Varchar(5)),
                ],
                vec![0, 1],
            ))
            .expect("create tatp_access_info");
        let special_facility = db
            .create_table(TableSchema::new(
                "tatp_special_facility",
                vec![
                    ColumnDef::new("s_id", DataType::BigInt),
                    ColumnDef::new("sf_type", DataType::BigInt),
                    ColumnDef::new("is_active", DataType::Bool),
                    ColumnDef::new("error_cntrl", DataType::BigInt),
                    ColumnDef::new("data_a", DataType::BigInt),
                    ColumnDef::new("data_b", DataType::Varchar(5)),
                ],
                vec![0, 1],
            ))
            .expect("create tatp_special_facility");
        let call_forwarding = db
            .create_table(TableSchema::new(
                "tatp_call_forwarding",
                vec![
                    ColumnDef::new("s_id", DataType::BigInt),
                    ColumnDef::new("sf_type", DataType::BigInt),
                    ColumnDef::new("start_time", DataType::BigInt),
                    ColumnDef::new("end_time", DataType::BigInt),
                    ColumnDef::new("numberx", DataType::Varchar(15)),
                ],
                vec![0, 1, 2],
            ))
            .expect("create tatp_call_forwarding");
        TatpTables {
            subscriber,
            access_info,
            special_facility,
            call_forwarding,
        }
    }

    fn load_subscriber(
        &self,
        db: &Database,
        txn: TxnId,
        t: TatpTables,
        s_id: i64,
        rng: &mut Xorshift,
    ) {
        let policy = LockingPolicy::Bypass;
        db.insert(
            txn,
            t.subscriber,
            vec![
                Value::BigInt(s_id),
                Value::Varchar(sub_nbr(s_id)),
                Value::Bool(rng.next().is_multiple_of(2)),
                Value::BigInt((rng.next() % 1_000_000) as i64),
                Value::BigInt((rng.next() % 1_000_000) as i64),
            ],
            policy,
        )
        .expect("load subscriber row");
        for ai_type in rng.distinct_types() {
            db.insert(
                txn,
                t.access_info,
                vec![
                    Value::BigInt(s_id),
                    Value::BigInt(ai_type),
                    Value::BigInt((rng.next() % 256) as i64),
                    Value::BigInt((rng.next() % 256) as i64),
                    Value::Varchar("abc".into()),
                    Value::Varchar("defgh".into()),
                ],
                policy,
            )
            .expect("load access_info row");
        }
        for sf_type in rng.distinct_types() {
            db.insert(
                txn,
                t.special_facility,
                vec![
                    Value::BigInt(s_id),
                    Value::BigInt(sf_type),
                    Value::Bool(rng.next() % 100 < 85),
                    Value::BigInt((rng.next() % 256) as i64),
                    Value::BigInt((rng.next() % 256) as i64),
                    Value::Varchar("vwxyz".into()),
                ],
                policy,
            )
            .expect("load special_facility row");
            let cf_count = (rng.next() % 4) as usize; // 0..=3
            for &start in START_TIMES.iter().take(cf_count) {
                let end = start + 1 + (rng.next() % 8) as i64;
                db.insert(
                    txn,
                    t.call_forwarding,
                    vec![
                        Value::BigInt(s_id),
                        Value::BigInt(sf_type),
                        Value::BigInt(start),
                        Value::BigInt(end),
                        Value::Varchar(sub_nbr((rng.next() % 1_000_000) as i64)),
                    ],
                    policy,
                )
                .expect("load call_forwarding row");
            }
        }
    }

    /// Uniform routing rules for all four tables over `partitions`
    /// partitions owned by as many workers: every table routes on its
    /// first column — the subscriber id — with identical boundaries, so
    /// same-subscriber accesses across tables land on the same partition.
    pub fn routing(&self, tables: TatpTables, partitions: usize) -> RoutingTable {
        let mut rt = RoutingTable::new();
        for table in [
            tables.subscriber,
            tables.access_info,
            tables.special_facility,
            tables.call_forwarding,
        ] {
            rt.set_rule(RoutingRule::uniform(
                table,
                0,
                0,
                self.subscribers.max(1) - 1,
                partitions,
                partitions,
            ));
        }
        rt
    }

    /// Current row counts of the four tables.
    pub fn counts(db: &Database, tables: TatpTables) -> TatpCounts {
        TatpCounts {
            subscriber: db.row_count(tables.subscriber).expect("subscriber count"),
            access_info: db.row_count(tables.access_info).expect("access_info count"),
            special_facility: db
                .row_count(tables.special_facility)
                .expect("special_facility count"),
            call_forwarding: db
                .row_count(tables.call_forwarding)
                .expect("call_forwarding count"),
        }
    }

    /// TATP referential integrity: every access-info / special-facility
    /// row names an existing subscriber, and every call-forwarding row
    /// has a live special-facility parent. Call at quiescence (the check
    /// scans without transaction isolation).
    pub fn check_integrity(db: &Database, tables: TatpTables) -> Result<(), String> {
        let key2 = |row: &[Value]| (row[0].clone(), row[1].clone());
        let subscribers: std::collections::BTreeSet<Value> = db
            .scan(tables.subscriber)
            .expect("scan subscriber")
            .iter()
            .map(|r| r[0].clone())
            .collect();
        let facilities: std::collections::BTreeSet<(Value, Value)> = db
            .scan(tables.special_facility)
            .expect("scan special_facility")
            .iter()
            .map(|r| {
                if !subscribers.contains(&r[0]) {
                    panic!("special_facility row {r:?} has no subscriber");
                }
                key2(r)
            })
            .collect();
        for row in db.scan(tables.access_info).expect("scan access_info") {
            if !subscribers.contains(&row[0]) {
                return Err(format!("access_info row {row:?} has no subscriber"));
            }
        }
        for row in db
            .scan(tables.call_forwarding)
            .expect("scan call_forwarding")
        {
            if !facilities.contains(&key2(&row)) {
                return Err(format!(
                    "call_forwarding row {row:?} has no special_facility parent"
                ));
            }
        }
        Ok(())
    }
}

/// The spec's three call-forwarding time slots.
pub const START_TIMES: [i64; 3] = [0, 8, 16];

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// One fully-parameterized TATP transaction, drawn from a [`TatpMix`].
///
/// Holding every parameter (instead of drawing inside the transaction
/// body) is what makes the differential oracle possible: the same
/// `TatpOp` value is compiled to a conventional body, a DORA flow graph,
/// and a model-interpreter step, and all three must agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TatpOp {
    /// Read the full subscriber row (35% of the mix).
    GetSubscriberData {
        /// Subscriber probed.
        s_id: i64,
    },
    /// Read the active call-forwarding destinations for a time window
    /// (10%). Expected failure when the facility is missing/inactive or
    /// no forwarding row covers the window.
    GetNewDestination {
        /// Subscriber probed.
        s_id: i64,
        /// Special-facility type probed.
        sf_type: i64,
        /// Window start (the spec draws a multiple of 8).
        start_time: i64,
        /// Window end (1..=24).
        end_time: i64,
    },
    /// Read one access-info row (35%). Expected failure when the
    /// subscriber lacks that `ai_type`.
    GetAccessData {
        /// Subscriber probed.
        s_id: i64,
        /// Access-info type probed.
        ai_type: i64,
    },
    /// Update `subscriber.bit_1` and `special_facility.data_a` (2%).
    /// Expected failure when the facility row is missing — the
    /// subscriber-side write must then roll back.
    UpdateSubscriberData {
        /// Subscriber updated.
        s_id: i64,
        /// New `bit_1`.
        bit_1: bool,
        /// New `data_a`.
        data_a: i64,
        /// Facility type updated.
        sf_type: i64,
    },
    /// Update `subscriber.vlr_location` (14%). The optional
    /// `handoff_from` models a roaming handoff: the transaction also
    /// reads the previous cell's subscriber row (`msc_location`) — the
    /// knob the `access_patterns` bench steers local or remote.
    UpdateLocation {
        /// Subscriber updated.
        s_id: i64,
        /// New `vlr_location`.
        vlr_location: i64,
        /// Previous-cell subscriber whose `msc_location` is read, if any.
        handoff_from: Option<i64>,
    },
    /// Insert a call-forwarding row (2%). Expected failure when the
    /// facility type does not exist or the row already does.
    InsertCallForwarding {
        /// Subscriber.
        s_id: i64,
        /// Facility type.
        sf_type: i64,
        /// Slot start (`{0, 8, 16}`).
        start_time: i64,
        /// Slot end.
        end_time: i64,
        /// Forwarded-to number, encoded as an integer (formatted with
        /// [`sub_nbr`] on insert).
        numberx: i64,
    },
    /// Delete a call-forwarding row (2%). Expected failure when the row
    /// does not exist.
    DeleteCallForwarding {
        /// Subscriber.
        s_id: i64,
        /// Facility type.
        sf_type: i64,
        /// Slot start.
        start_time: i64,
    },
}

impl TatpOp {
    /// The transaction's TATP name.
    pub fn name(&self) -> &'static str {
        match self {
            TatpOp::GetSubscriberData { .. } => "GetSubscriberData",
            TatpOp::GetNewDestination { .. } => "GetNewDestination",
            TatpOp::GetAccessData { .. } => "GetAccessData",
            TatpOp::UpdateSubscriberData { .. } => "UpdateSubscriberData",
            TatpOp::UpdateLocation { .. } => "UpdateLocation",
            TatpOp::InsertCallForwarding { .. } => "InsertCallForwarding",
            TatpOp::DeleteCallForwarding { .. } => "DeleteCallForwarding",
        }
    }

    /// The subscriber id the transaction routes on.
    pub fn s_id(&self) -> i64 {
        match *self {
            TatpOp::GetSubscriberData { s_id }
            | TatpOp::GetNewDestination { s_id, .. }
            | TatpOp::GetAccessData { s_id, .. }
            | TatpOp::UpdateSubscriberData { s_id, .. }
            | TatpOp::UpdateLocation { s_id, .. }
            | TatpOp::InsertCallForwarding { s_id, .. }
            | TatpOp::DeleteCallForwarding { s_id, .. } => s_id,
        }
    }

    /// Net change to the call-forwarding row count if the transaction
    /// commits (+1 insert, -1 delete, 0 otherwise).
    pub fn cf_delta(&self) -> i64 {
        match self {
            TatpOp::InsertCallForwarding { .. } => 1,
            TatpOp::DeleteCallForwarding { .. } => -1,
            _ => 0,
        }
    }
}

/// Per-transaction result capture: the committed transaction's reads (or
/// written values) land here so the differential oracle can compare them
/// across executors. The **last** `put` wins — the conventional engine
/// may re-run a body on a transient retry, and only the committing run's
/// digest must survive.
#[derive(Debug, Clone, Default)]
pub struct ResultSink(Arc<Mutex<Vec<Value>>>);

impl ResultSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the sink's digest.
    pub fn put(&self, digest: Vec<Value>) {
        *self.0.lock().expect("sink poisoned") = digest;
    }

    /// Copies the digest out.
    pub fn take(&self) -> Vec<Value> {
        self.0.lock().expect("sink poisoned").clone()
    }
}

fn sink_put(sink: &Option<ResultSink>, digest: Vec<Value>) {
    if let Some(sink) = sink {
        sink.put(digest);
    }
}

fn record(ctx: Option<&WorkerCtx>, table: TableId, key: i64, write: bool) {
    if let Some(ctx) = ctx {
        ctx.record(table, key, write);
    }
}

/// Inclusive call-forwarding primary-key bounds covering `(s_id, sf_type, *)`.
fn cf_bounds(s_id: i64, sf_type: i64) -> ([Value; 3], [Value; 3]) {
    (
        [
            Value::BigInt(s_id),
            Value::BigInt(sf_type),
            Value::BigInt(i64::MIN),
        ],
        [
            Value::BigInt(s_id),
            Value::BigInt(sf_type),
            Value::BigInt(i64::MAX),
        ],
    )
}

/// Straight-line execution of one op inside an already-begun transaction:
/// the shared body of the conventional form and the model interpreter.
/// Returns the committed digest, or the (expected-miss or genuine) error
/// that must abort the transaction.
fn apply_op(
    db: &Database,
    txn: TxnId,
    t: TatpTables,
    op: &TatpOp,
    policy: LockingPolicy,
    ctx: Option<&WorkerCtx>,
) -> StorageResult<Vec<Value>> {
    match *op {
        TatpOp::GetSubscriberData { s_id } => {
            record(ctx, t.subscriber, s_id, false);
            db.get(txn, t.subscriber, &[Value::BigInt(s_id)], policy)?
                .ok_or_else(|| miss("no subscriber"))
        }
        TatpOp::GetNewDestination {
            s_id,
            sf_type,
            start_time,
            end_time,
        } => {
            record(ctx, t.special_facility, s_id, false);
            let sf = db
                .get(
                    txn,
                    t.special_facility,
                    &[Value::BigInt(s_id), Value::BigInt(sf_type)],
                    policy,
                )?
                .ok_or_else(|| miss("no special facility"))?;
            if sf[2] != Value::Bool(true) {
                return Err(miss("special facility inactive"));
            }
            record(ctx, t.call_forwarding, s_id, false);
            // Validated (lock-free) range read in BOTH engine forms: the
            // identical snapshot protocol keeps the A/B comparison
            // apples-to-apples, and it is exactly the membership-fragile
            // path the differential oracle probes under churn.
            let (lo, hi) = cf_bounds(s_id, sf_type);
            let rows =
                db.scan_validated(txn, t.call_forwarding, &lo, &hi, LockingPolicy::Bypass)?;
            let numbers = forwarded_numbers(&rows, start_time, end_time);
            if numbers.is_empty() {
                return Err(miss("no matching call forwarding"));
            }
            Ok(numbers)
        }
        TatpOp::GetAccessData { s_id, ai_type } => {
            record(ctx, t.access_info, s_id, false);
            let row = db
                .get(
                    txn,
                    t.access_info,
                    &[Value::BigInt(s_id), Value::BigInt(ai_type)],
                    policy,
                )?
                .ok_or_else(|| miss("no access info"))?;
            Ok(row[2..].to_vec())
        }
        TatpOp::UpdateSubscriberData {
            s_id,
            bit_1,
            data_a,
            sf_type,
        } => {
            record(ctx, t.subscriber, s_id, true);
            if !db.update(
                txn,
                t.subscriber,
                &[Value::BigInt(s_id)],
                &[(2, Value::Bool(bit_1))],
                policy,
            )? {
                return Err(miss("no subscriber"));
            }
            record(ctx, t.special_facility, s_id, true);
            if !db.update(
                txn,
                t.special_facility,
                &[Value::BigInt(s_id), Value::BigInt(sf_type)],
                &[(4, Value::BigInt(data_a))],
                policy,
            )? {
                return Err(miss("no special facility"));
            }
            Ok(vec![Value::Bool(bit_1), Value::BigInt(data_a)])
        }
        TatpOp::UpdateLocation {
            s_id,
            vlr_location,
            handoff_from,
        } => {
            let mut digest = vec![Value::BigInt(vlr_location)];
            if let Some(from) = handoff_from {
                record(ctx, t.subscriber, from, false);
                let prev = db
                    .get(txn, t.subscriber, &[Value::BigInt(from)], policy)?
                    .ok_or_else(|| miss("no handoff subscriber"))?;
                digest.push(prev[3].clone());
            }
            record(ctx, t.subscriber, s_id, true);
            if !db.update(
                txn,
                t.subscriber,
                &[Value::BigInt(s_id)],
                &[(4, Value::BigInt(vlr_location))],
                policy,
            )? {
                return Err(miss("no subscriber"));
            }
            Ok(digest)
        }
        TatpOp::InsertCallForwarding {
            s_id,
            sf_type,
            start_time,
            end_time,
            numberx,
        } => {
            record(ctx, t.special_facility, s_id, false);
            db.get(
                txn,
                t.special_facility,
                &[Value::BigInt(s_id), Value::BigInt(sf_type)],
                policy,
            )?
            .ok_or_else(|| miss("no special facility"))?;
            record(ctx, t.call_forwarding, s_id, true);
            match db.insert(
                txn,
                t.call_forwarding,
                vec![
                    Value::BigInt(s_id),
                    Value::BigInt(sf_type),
                    Value::BigInt(start_time),
                    Value::BigInt(end_time),
                    Value::Varchar(sub_nbr(numberx)),
                ],
                policy,
            ) {
                Ok(_) => Ok(vec![
                    Value::BigInt(s_id),
                    Value::BigInt(sf_type),
                    Value::BigInt(start_time),
                ]),
                Err(StorageError::DuplicateKey(_)) => Err(miss("call forwarding exists")),
                Err(e) => Err(e),
            }
        }
        TatpOp::DeleteCallForwarding {
            s_id,
            sf_type,
            start_time,
        } => {
            record(ctx, t.call_forwarding, s_id, true);
            if !db.delete(
                txn,
                t.call_forwarding,
                &[
                    Value::BigInt(s_id),
                    Value::BigInt(sf_type),
                    Value::BigInt(start_time),
                ],
                policy,
            )? {
                return Err(miss("no call forwarding"));
            }
            Ok(vec![
                Value::BigInt(s_id),
                Value::BigInt(sf_type),
                Value::BigInt(start_time),
            ])
        }
    }
}

/// The `numberx` values of forwarding rows covering `[start, end)` per
/// the spec predicate `cf.start_time <= start AND end < cf.end_time`,
/// in primary-key order.
fn forwarded_numbers(cf_rows: &[Vec<Value>], start: i64, end: i64) -> Vec<Value> {
    cf_rows
        .iter()
        .filter(|r| {
            let cf_start = r[2].as_i64().unwrap_or(i64::MAX);
            let cf_end = r[3].as_i64().unwrap_or(i64::MIN);
            cf_start <= start && end < cf_end
        })
        .map(|r| r[4].clone())
        .collect()
}

// ---------------------------------------------------------------------------
// Conventional form
// ---------------------------------------------------------------------------

/// The conventional [`TxnRequest`] form of `op`: one straight-line body
/// under centralized locking (re-runnable for the engine's retries). A
/// committed transaction's digest lands in `sink`, when given.
pub fn request_of(t: TatpTables, op: &TatpOp, sink: Option<ResultSink>) -> TxnRequest {
    let name = op.name();
    let op = op.clone();
    TxnRequest::new(name, move |db, txn, ctx| {
        let digest = apply_op(db, txn, t, &op, CONV_POLICY, Some(ctx))?;
        sink_put(&sink, digest);
        Ok(())
    })
}

// ---------------------------------------------------------------------------
// Model interpreter
// ---------------------------------------------------------------------------

/// The single-threaded **model interpreter**: applies `op` directly
/// against the storage layer (no engine, no locks — `Bypass` only) and
/// returns the committed digest or the abort reason, exactly as the
/// engines would report them. The differential oracle replays a stream
/// through this and both engines and requires three-way agreement.
pub fn apply_model(db: &Database, t: TatpTables, op: &TatpOp) -> Result<Vec<Value>, String> {
    let txn = db.begin();
    match apply_op(db, txn, t, op, LockingPolicy::Bypass, None) {
        Ok(digest) => {
            db.commit_policy(txn, LockingPolicy::Bypass)
                .expect("model commit");
            Ok(digest)
        }
        Err(e) => {
            db.abort_policy(txn, LockingPolicy::Bypass)
                .expect("model abort");
            Err(e.to_string())
        }
    }
}

// ---------------------------------------------------------------------------
// DORA form
// ---------------------------------------------------------------------------

/// The DORA [`FlowGraph`] form of `op`: per-table partition-aligned
/// actions separated by rendezvous points. All four TATP tables route on
/// the subscriber id with identical boundaries, so every action of a
/// transaction lands on one partition — multi-action phases still pay
/// the local lock acquisitions and the RVP, which is the protocol cost
/// the benches measure. A committed transaction's digest lands in
/// `sink`, when given.
pub fn flow_of(t: TatpTables, op: &TatpOp, sink: Option<ResultSink>) -> FlowGraph {
    match *op {
        TatpOp::GetSubscriberData { s_id } => FlowGraph::new(
            "GetSubscriberData",
            vec![ActionSpec::read(t.subscriber, s_id, move |db, txn, ctx| {
                ctx.record(t.subscriber, s_id, false);
                let row = db
                    .get(txn, t.subscriber, &[Value::BigInt(s_id)], DORA_POLICY)?
                    .ok_or_else(|| miss("no subscriber"))?;
                sink_put(&sink, row.clone());
                Ok(row)
            })],
        ),
        TatpOp::GetNewDestination {
            s_id,
            sf_type,
            start_time,
            end_time,
        } => {
            // Phase 1: two read actions — the facility probe and the
            // forwarding range scan — each holding its own table's
            // `(table, s_id)` read intent. The RVP joins them and makes
            // the commit/abort decision.
            FlowGraph::new(
                "GetNewDestination",
                vec![
                    ActionSpec::read(t.special_facility, s_id, move |db, txn, ctx| {
                        ctx.record(t.special_facility, s_id, false);
                        let sf = db
                            .get(
                                txn,
                                t.special_facility,
                                &[Value::BigInt(s_id), Value::BigInt(sf_type)],
                                DORA_POLICY,
                            )?
                            .ok_or_else(|| miss("no special facility"))?;
                        Ok(vec![sf[2].clone()])
                    }),
                    ActionSpec::read(t.call_forwarding, s_id, move |db, txn, ctx| {
                        ctx.record(t.call_forwarding, s_id, false);
                        // Validated scan while holding the partition-local
                        // read intent on (call_forwarding, s_id): same-
                        // subscriber churn is excluded by the local lock,
                        // other subscribers fall outside the range — the
                        // membership gap cannot bite this shape.
                        let (lo, hi) = cf_bounds(s_id, sf_type);
                        let rows = db.scan_validated(
                            txn,
                            t.call_forwarding,
                            &lo,
                            &hi,
                            LockingPolicy::Bypass,
                        )?;
                        Ok(rows.into_iter().flatten().collect())
                    }),
                ],
            )
            .then(move |outputs| {
                if outputs[0] != [Value::Bool(true)] {
                    return Err(miss("special facility inactive"));
                }
                // The scan's rows come back flattened (5 values each).
                let rows: Vec<Vec<Value>> = outputs[1].chunks(5).map(<[Value]>::to_vec).collect();
                let numbers = forwarded_numbers(&rows, start_time, end_time);
                if numbers.is_empty() {
                    return Err(miss("no matching call forwarding"));
                }
                sink_put(&sink, numbers);
                Ok(vec![])
            })
        }
        TatpOp::GetAccessData { s_id, ai_type } => FlowGraph::new(
            "GetAccessData",
            vec![ActionSpec::read(
                t.access_info,
                s_id,
                move |db, txn, ctx| {
                    ctx.record(t.access_info, s_id, false);
                    let row = db
                        .get(
                            txn,
                            t.access_info,
                            &[Value::BigInt(s_id), Value::BigInt(ai_type)],
                            DORA_POLICY,
                        )?
                        .ok_or_else(|| miss("no access info"))?;
                    sink_put(&sink, row[2..].to_vec());
                    Ok(row)
                },
            )],
        ),
        TatpOp::UpdateSubscriberData {
            s_id,
            bit_1,
            data_a,
            sf_type,
        } => {
            // One phase, two write actions on different tables of the
            // same partition. Only the facility side can miss; its abort
            // rolls the subscriber write back through the undo log.
            let sink2 = sink.clone();
            FlowGraph::new(
                "UpdateSubscriberData",
                vec![
                    ActionSpec::write(t.subscriber, s_id, move |db, txn, ctx| {
                        ctx.record(t.subscriber, s_id, true);
                        if !db.update(
                            txn,
                            t.subscriber,
                            &[Value::BigInt(s_id)],
                            &[(2, Value::Bool(bit_1))],
                            DORA_POLICY,
                        )? {
                            return Err(miss("no subscriber"));
                        }
                        Ok(vec![])
                    }),
                    ActionSpec::write(t.special_facility, s_id, move |db, txn, ctx| {
                        ctx.record(t.special_facility, s_id, true);
                        if !db.update(
                            txn,
                            t.special_facility,
                            &[Value::BigInt(s_id), Value::BigInt(sf_type)],
                            &[(4, Value::BigInt(data_a))],
                            DORA_POLICY,
                        )? {
                            return Err(miss("no special facility"));
                        }
                        sink_put(&sink2, vec![Value::Bool(bit_1), Value::BigInt(data_a)]);
                        Ok(vec![])
                    }),
                ],
            )
        }
        TatpOp::UpdateLocation {
            s_id,
            vlr_location,
            handoff_from: None,
        } => FlowGraph::new(
            "UpdateLocation",
            vec![ActionSpec::write(
                t.subscriber,
                s_id,
                move |db, txn, ctx| {
                    ctx.record(t.subscriber, s_id, true);
                    if !db.update(
                        txn,
                        t.subscriber,
                        &[Value::BigInt(s_id)],
                        &[(4, Value::BigInt(vlr_location))],
                        DORA_POLICY,
                    )? {
                        return Err(miss("no subscriber"));
                    }
                    sink_put(&sink, vec![Value::BigInt(vlr_location)]);
                    Ok(vec![])
                },
            )],
        ),
        TatpOp::UpdateLocation {
            s_id,
            vlr_location,
            handoff_from: Some(from),
        } => {
            // Roaming handoff: the previous cell's read is its own
            // action — on another partition when `from` routes there
            // (the local-vs-remote ratio the access_patterns bench
            // sweeps). The RVP assembles the digest and commits.
            FlowGraph::new(
                "UpdateLocationHandoff",
                vec![
                    ActionSpec::read(t.subscriber, from, move |db, txn, ctx| {
                        ctx.record(t.subscriber, from, false);
                        let prev = db
                            .get(txn, t.subscriber, &[Value::BigInt(from)], DORA_POLICY)?
                            .ok_or_else(|| miss("no handoff subscriber"))?;
                        Ok(vec![prev[3].clone()])
                    }),
                    ActionSpec::write(t.subscriber, s_id, move |db, txn, ctx| {
                        ctx.record(t.subscriber, s_id, true);
                        if !db.update(
                            txn,
                            t.subscriber,
                            &[Value::BigInt(s_id)],
                            &[(4, Value::BigInt(vlr_location))],
                            DORA_POLICY,
                        )? {
                            return Err(miss("no subscriber"));
                        }
                        Ok(vec![])
                    }),
                ],
            )
            .then(move |outputs| {
                sink_put(
                    &sink,
                    vec![Value::BigInt(vlr_location), outputs[0][0].clone()],
                );
                Ok(vec![])
            })
        }
        TatpOp::InsertCallForwarding {
            s_id,
            sf_type,
            start_time,
            end_time,
            numberx,
        } => {
            // Phase 1 probes the facility; the RVP generates the insert
            // action only when the parent exists — the classic
            // read-then-write decomposition with one rendezvous.
            FlowGraph::new(
                "InsertCallForwarding",
                vec![ActionSpec::read(
                    t.special_facility,
                    s_id,
                    move |db, txn, ctx| {
                        ctx.record(t.special_facility, s_id, false);
                        db.get(
                            txn,
                            t.special_facility,
                            &[Value::BigInt(s_id), Value::BigInt(sf_type)],
                            DORA_POLICY,
                        )?
                        .ok_or_else(|| miss("no special facility"))?;
                        Ok(vec![])
                    },
                )],
            )
            .then(move |_| {
                Ok(vec![ActionSpec::write(
                    t.call_forwarding,
                    s_id,
                    move |db, txn, ctx| {
                        ctx.record(t.call_forwarding, s_id, true);
                        match db.insert(
                            txn,
                            t.call_forwarding,
                            vec![
                                Value::BigInt(s_id),
                                Value::BigInt(sf_type),
                                Value::BigInt(start_time),
                                Value::BigInt(end_time),
                                Value::Varchar(sub_nbr(numberx)),
                            ],
                            DORA_POLICY,
                        ) {
                            Ok(_) => {
                                sink_put(
                                    &sink,
                                    vec![
                                        Value::BigInt(s_id),
                                        Value::BigInt(sf_type),
                                        Value::BigInt(start_time),
                                    ],
                                );
                                Ok(vec![])
                            }
                            Err(StorageError::DuplicateKey(_)) => {
                                Err(miss("call forwarding exists"))
                            }
                            Err(e) => Err(e),
                        }
                    },
                )])
            })
        }
        TatpOp::DeleteCallForwarding {
            s_id,
            sf_type,
            start_time,
        } => FlowGraph::new(
            "DeleteCallForwarding",
            vec![ActionSpec::write(
                t.call_forwarding,
                s_id,
                move |db, txn, ctx| {
                    ctx.record(t.call_forwarding, s_id, true);
                    if !db.delete(
                        txn,
                        t.call_forwarding,
                        &[
                            Value::BigInt(s_id),
                            Value::BigInt(sf_type),
                            Value::BigInt(start_time),
                        ],
                        DORA_POLICY,
                    )? {
                        return Err(miss("no call forwarding"));
                    }
                    sink_put(
                        &sink,
                        vec![
                            Value::BigInt(s_id),
                            Value::BigInt(sf_type),
                            Value::BigInt(start_time),
                        ],
                    );
                    Ok(vec![])
                },
            )],
        ),
    }
}

// ---------------------------------------------------------------------------
// Integrity audit (secondary / validated)
// ---------------------------------------------------------------------------

/// Checks every call-forwarding row in `rows` for a live, validated
/// special-facility parent. The facility reads go through the validated
/// path too, so a parent mid-rewrite surfaces as a retryable conflict,
/// not a false orphan.
fn audit_parents(
    db: &Database,
    txn: TxnId,
    t: TatpTables,
    rows: &[Vec<Value>],
) -> StorageResult<Vec<Value>> {
    let parents: std::collections::BTreeSet<(i64, i64)> = rows
        .iter()
        .map(|r| {
            (
                r[0].as_i64().unwrap_or(i64::MIN),
                r[1].as_i64().unwrap_or(i64::MIN),
            )
        })
        .collect();
    let keys: Vec<Vec<Value>> = parents
        .iter()
        .map(|&(s, sf)| vec![Value::BigInt(s), Value::BigInt(sf)])
        .collect();
    let found = db.read_many_validated(txn, t.special_facility, &keys, LockingPolicy::Bypass)?;
    for (key, row) in keys.iter().zip(&found) {
        if row.is_none() {
            // An orphan is a broken engine, not load: non-retryable so
            // tests and benches fail loudly.
            return Err(StorageError::Internal(format!(
                "tatp audit: call_forwarding rows with no special_facility parent {key:?}"
            )));
        }
    }
    Ok(vec![Value::BigInt(rows.len() as i64)])
}

/// The referential-integrity audit as a DORA flow: one **secondary**
/// (non-aligned) action scanning all of `call_forwarding` through
/// [`Database::scan_validated`] and validating every parent facility.
/// Commits with the observed forwarding-row count; an orphan aborts with
/// a distinctive non-retryable reason.
pub fn integrity_audit_flow(t: TatpTables, max_s_id: i64) -> FlowGraph {
    FlowGraph::new(
        "TatpIntegrityAudit",
        vec![ActionSpec::secondary(
            t.call_forwarding,
            move |db, txn, _| {
                let (lo, _) = cf_bounds(0, i64::MIN);
                let (_, hi) = cf_bounds(max_s_id, i64::MAX);
                let rows =
                    db.scan_validated(txn, t.call_forwarding, &lo, &hi, LockingPolicy::Bypass)?;
                audit_parents(db, txn, t, &rows)
            },
        )],
    )
}

/// The same audit as a conventional request: the engine's retry loop
/// plays the role of DORA's park/re-run on validated-read conflicts.
pub fn integrity_audit_request(t: TatpTables, max_s_id: i64) -> TxnRequest {
    TxnRequest::new("TatpIntegrityAudit", move |db, txn, _| {
        let (lo, _) = cf_bounds(0, i64::MIN);
        let (_, hi) = cf_bounds(max_s_id, i64::MAX);
        let rows = db.scan_validated(txn, t.call_forwarding, &lo, &hi, LockingPolicy::Bypass)?;
        audit_parents(db, txn, t, &rows)?;
        Ok(())
    })
}

// ---------------------------------------------------------------------------
// Mix
// ---------------------------------------------------------------------------

/// Standard TATP mix percentages, in [`TatpOp`] declaration order:
/// `GetSubscriberData`, `GetNewDestination`, `GetAccessData`,
/// `UpdateSubscriberData`, `UpdateLocation`, `InsertCallForwarding`,
/// `DeleteCallForwarding` — the canonical 80/16/4
/// read/update/insert-delete split.
pub const STANDARD_MIX_PCT: [u64; 7] = [35, 10, 35, 2, 14, 2, 2];

#[derive(Debug, Clone, Copy)]
struct HandoffCfg {
    partitions: usize,
    remote_pct: u64,
}

/// A deterministic stream of TATP operations.
///
/// An xorshift generator seeded per client lets several client threads
/// draw independent, reproducible streams — the same inputs drive both
/// engines and the model interpreter. Variants:
///
/// * [`TatpMix::new`] — the standard 80/16/4 mix, uniform subscriber
///   draws;
/// * [`TatpMix::with_key_block`] — restrict draws to a subscriber block
///   (the oracle gives each client a disjoint block so per-transaction
///   results are deterministic under concurrency);
/// * [`TatpMix::with_skew`] — Zipf-skewed subscriber draws (hottest keys
///   first in the key space, so skew concentrates on partition 0 — the
///   `load_balancing_skew` bench);
/// * [`TatpMix::update_location_handoff`] — 100% `UpdateLocation` with a
///   roaming-handoff companion read steered into the source's partition
///   block or deliberately out of it (the `access_patterns` bench).
#[derive(Debug, Clone)]
pub struct TatpMix {
    subscribers: i64,
    lo: i64,
    hi: i64,
    state: u64,
    /// Cumulative per-op thresholds out of 100 (see [`STANDARD_MIX_PCT`]).
    cumulative: [u64; 7],
    zipf: Option<Zipf>,
    handoff: Option<HandoffCfg>,
    /// Subscriber draws made so far (drives the skew shift).
    drawn: u64,
    /// After this many subscriber draws, the hot set jumps to the middle
    /// of the key space (see [`TatpMix::with_skew_shift`]).
    shift_after: Option<u64>,
}

impl TatpMix {
    /// The standard mix over `subscribers` keys; distinct `seed`s give
    /// distinct streams.
    pub fn new(subscribers: i64, seed: u64) -> Self {
        let mut cumulative = [0u64; 7];
        let mut acc = 0;
        for (slot, pct) in cumulative.iter_mut().zip(STANDARD_MIX_PCT) {
            acc += pct;
            *slot = acc;
        }
        debug_assert_eq!(acc, 100);
        let subscribers = subscribers.max(1);
        TatpMix {
            subscribers,
            lo: 0,
            hi: subscribers - 1,
            // xorshift must not start at 0; fold the seed away from it.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            cumulative,
            zipf: None,
            handoff: None,
            drawn: 0,
            shift_after: None,
        }
    }

    /// Restricts subscriber draws to the inclusive block `[lo, hi]`.
    pub fn with_key_block(mut self, lo: i64, hi: i64) -> Self {
        assert!(
            (0..self.subscribers).contains(&lo) && lo <= hi && hi < self.subscribers,
            "key block [{lo}, {hi}] outside 0..{}",
            self.subscribers
        );
        self.lo = lo;
        self.hi = hi;
        self
    }

    /// The standard mix with Zipf-skewed subscriber draws (`theta` = 0
    /// degenerates to uniform; the spec-style hot set sits at the low end
    /// of the key space).
    pub fn with_skew(subscribers: i64, seed: u64, theta: f64) -> Self {
        let mut mix = Self::new(subscribers, seed);
        if theta > 0.0 {
            mix.zipf = Some(Zipf::new((mix.hi - mix.lo + 1) as u64, theta));
        }
        mix
    }

    /// Like [`TatpMix::with_skew`], but after `shift_after` subscriber
    /// draws the hot set jumps to the middle of the key space: a draw of
    /// Zipf rank `r` maps to key `(r + span/2) mod span` instead of `r`.
    /// This is the mid-run hotspot move of the `load_balancing_skew`
    /// bench's skew-shift scenario — a balancer that adapted to the
    /// initial hot range must notice and re-adapt under live traffic.
    pub fn with_skew_shift(subscribers: i64, seed: u64, theta: f64, shift_after: u64) -> Self {
        let mut mix = Self::with_skew(subscribers, seed, theta);
        mix.shift_after = Some(shift_after);
        mix
    }

    /// A 100% `UpdateLocation` stream where every transaction carries a
    /// roaming-handoff companion read: with probability `remote_pct`% the
    /// previous-cell subscriber is drawn from a *different* partition
    /// block (of the uniform split over `partitions`), otherwise from the
    /// source's own block. Sweeping `remote_pct` sweeps the DORA engine's
    /// local-vs-remote action ratio while total work per transaction
    /// stays fixed.
    pub fn update_location_handoff(
        subscribers: i64,
        seed: u64,
        partitions: usize,
        remote_pct: u64,
    ) -> Self {
        let mut mix = Self::new(subscribers, seed);
        // All weight on UpdateLocation (index 4).
        mix.cumulative = [0, 0, 0, 0, 100, 100, 100];
        mix.handoff = Some(HandoffCfg {
            partitions: partitions.max(1),
            remote_pct: remote_pct.min(100),
        });
        mix
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A uniform f64 in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_s_id(&mut self) -> i64 {
        let span = (self.hi - self.lo + 1) as u64;
        self.drawn += 1;
        let rank = if self.zipf.is_some() {
            let u = self.next_f64();
            let zipf = self.zipf.as_ref().expect("checked above");
            zipf.sample(u)
        } else {
            self.next_u64() % span
        };
        let rank = match self.shift_after {
            // Hotspot moved: rotate the rank-to-key mapping by half the
            // key space (a no-op distributionally for uniform draws).
            Some(after) if self.drawn > after => (rank + span / 2) % span,
            _ => rank,
        };
        self.lo + rank as i64
    }

    /// The uniform-rule block containing `key`, matching the boundaries
    /// [`RoutingRule::uniform`] derives over the full subscriber range.
    fn block_of(&self, key: i64, partitions: usize) -> (i64, i64) {
        let parts = partitions as i64;
        let n = self.subscribers;
        let idx = (key * parts) / n;
        let lo = (n * idx) / parts;
        let hi = ((n * (idx + 1)) / parts - 1).min(n - 1);
        (lo, hi)
    }

    fn draw_handoff(&mut self, s_id: i64, cfg: HandoffCfg) -> i64 {
        let parts = cfg.partitions as i64;
        let remote = parts > 1 && self.next_u64() % 100 < cfg.remote_pct;
        let (lo, hi) = if remote {
            let own = (s_id * parts) / self.subscribers;
            let other = (own + 1 + (self.next_u64() % (parts as u64 - 1)) as i64) % parts;
            let lo = (self.subscribers * other) / parts;
            let hi = ((self.subscribers * (other + 1)) / parts - 1).min(self.subscribers - 1);
            (lo, hi)
        } else {
            self.block_of(s_id, cfg.partitions)
        };
        let span = (hi - lo + 1).max(1) as u64;
        let mut from = lo + (self.next_u64() % span) as i64;
        if from == s_id {
            // Reading one's own row is legal but pointless; shift inside
            // the block (a single-key block degenerates to a neighbor).
            from = if from < hi {
                from + 1
            } else {
                (from - 1).max(0)
            };
        }
        from
    }

    /// Draws the next operation of the stream.
    pub fn next_op(&mut self) -> TatpOp {
        let pick = self.next_u64() % 100;
        let s_id = self.next_s_id();
        let c = self.cumulative;
        if pick < c[0] {
            TatpOp::GetSubscriberData { s_id }
        } else if pick < c[1] {
            let sf_type = 1 + (self.next_u64() % 4) as i64;
            let start_time = START_TIMES[(self.next_u64() % 3) as usize];
            let end_time = 1 + (self.next_u64() % 24) as i64;
            TatpOp::GetNewDestination {
                s_id,
                sf_type,
                start_time,
                end_time,
            }
        } else if pick < c[2] {
            TatpOp::GetAccessData {
                s_id,
                ai_type: 1 + (self.next_u64() % 4) as i64,
            }
        } else if pick < c[3] {
            TatpOp::UpdateSubscriberData {
                s_id,
                bit_1: self.next_u64().is_multiple_of(2),
                data_a: (self.next_u64() % 256) as i64,
                sf_type: 1 + (self.next_u64() % 4) as i64,
            }
        } else if pick < c[4] {
            let vlr_location = (self.next_u64() % 1_000_000) as i64;
            let handoff_from = self.handoff.map(|cfg| self.draw_handoff(s_id, cfg));
            TatpOp::UpdateLocation {
                s_id,
                vlr_location,
                handoff_from,
            }
        } else if pick < c[5] {
            let sf_type = 1 + (self.next_u64() % 4) as i64;
            let start_time = START_TIMES[(self.next_u64() % 3) as usize];
            TatpOp::InsertCallForwarding {
                s_id,
                sf_type,
                start_time,
                end_time: start_time + 1 + (self.next_u64() % 8) as i64,
                numberx: (self.next_u64() % 1_000_000) as i64,
            }
        } else {
            TatpOp::DeleteCallForwarding {
                s_id,
                sf_type: 1 + (self.next_u64() % 4) as i64,
                start_time: START_TIMES[(self.next_u64() % 3) as usize],
            }
        }
    }
}

/// Zipf sampler over ranks `0..n` (Gray et al.'s incremental method,
/// also used by YCSB): rank 0 is the hottest. Deterministic — all state
/// is precomputed from `(n, theta)` and sampling is a pure function of
/// the caller's uniform draw.
#[derive(Debug, Clone)]
struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "zipf needs a non-empty domain");
        assert!(
            theta > 0.0 && (theta - 1.0).abs() > 1e-9,
            "theta must be positive and != 1 (got {theta})"
        );
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2.min(n)).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn sample(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Loader-internal xorshift (distinct from the mix's so loading and
/// drawing never share a stream).
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Xorshift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// 1–4 distinct types from `{1, 2, 3, 4}` via a partial
    /// Fisher–Yates shuffle.
    fn distinct_types(&mut self) -> Vec<i64> {
        let mut types = [1i64, 2, 3, 4];
        for i in 0..3 {
            let j = i + (self.next() as usize) % (4 - i);
            types.swap(i, j);
        }
        let count = 1 + (self.next() % 4) as usize;
        types[..count].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use dora_core::executor::{DoraEngine, DoraEngineConfig, TxnOutcome};
    use dora_engine_conv::{ConvEngine, ConvEngineConfig};

    use crate::harness::{run_flow_serial, run_request_serial};

    fn sorted_rows(db: &Database, t: TableId) -> Vec<Vec<Value>> {
        let mut rows = db.scan(t).unwrap();
        rows.sort();
        rows
    }

    fn all_sorted(db: &Database, t: TatpTables) -> Vec<Vec<Vec<Value>>> {
        [
            t.subscriber,
            t.access_info,
            t.special_facility,
            t.call_forwarding,
        ]
        .iter()
        .map(|&table| sorted_rows(db, table))
        .collect()
    }

    #[test]
    fn loader_is_deterministic_and_integral() {
        let wl = TatpWorkload {
            subscribers: 64,
            seed: 7,
        };
        let db_a = Database::default();
        let db_b = Database::default();
        let ta = wl.load(&db_a);
        let tb = wl.load(&db_b);
        assert_eq!(all_sorted(&db_a, ta), all_sorted(&db_b, tb));

        let counts = TatpWorkload::counts(&db_a, ta);
        assert_eq!(counts.subscriber, 64);
        assert!((64..=256).contains(&counts.access_info));
        assert!((64..=256).contains(&counts.special_facility));
        assert!(counts.call_forwarding <= counts.special_facility * 3);
        assert!(counts.call_forwarding > 0, "seed 7 must produce some rows");
        TatpWorkload::check_integrity(&db_a, ta).expect("loader integrity");

        // A different seed shifts the fan-out.
        let db_c = Database::default();
        let tc = TatpWorkload {
            subscribers: 64,
            seed: 8,
        }
        .load(&db_c);
        assert_ne!(all_sorted(&db_a, ta), all_sorted(&db_c, tc));
    }

    #[test]
    fn routing_aligns_all_four_tables() {
        let wl = TatpWorkload {
            subscribers: 100,
            seed: 1,
        };
        let db = Database::default();
        let t = wl.load(&db);
        let rt = wl.routing(t, 4);
        for s_id in [0, 33, 67, 99] {
            let owner = rt.owner_of(t.subscriber, s_id);
            for table in [t.access_info, t.special_facility, t.call_forwarding] {
                assert_eq!(rt.owner_of(table, s_id), owner, "s_id {s_id}");
            }
        }
    }

    #[test]
    fn mix_is_deterministic_and_well_formed() {
        let mut a = TatpMix::new(100, 3);
        let mut b = TatpMix::new(100, 3);
        let mut c = TatpMix::new(100, 4);
        let mut diverged = false;
        for _ in 0..512 {
            let op = a.next_op();
            assert_eq!(op, b.next_op(), "same seed, same stream");
            if op != c.next_op() {
                diverged = true;
            }
            assert!((0..100).contains(&op.s_id()), "{op:?}");
            match op {
                TatpOp::GetNewDestination {
                    sf_type,
                    start_time,
                    end_time,
                    ..
                } => {
                    assert!((1..=4).contains(&sf_type));
                    assert!(START_TIMES.contains(&start_time));
                    assert!((1..=24).contains(&end_time));
                }
                TatpOp::InsertCallForwarding {
                    start_time,
                    end_time,
                    ..
                } => {
                    assert!(START_TIMES.contains(&start_time));
                    assert!(end_time > start_time && end_time <= start_time + 8);
                }
                TatpOp::UpdateLocation { handoff_from, .. } => {
                    assert_eq!(handoff_from, None, "standard mix draws no handoffs");
                }
                _ => {}
            }
        }
        assert!(diverged, "different seeds must give different streams");
    }

    #[test]
    fn key_block_mix_stays_inside_its_block() {
        let mut mix = TatpMix::new(100, 9).with_key_block(25, 49);
        for _ in 0..256 {
            let s = mix.next_op().s_id();
            assert!((25..=49).contains(&s), "{s} escaped the block");
        }
    }

    #[test]
    fn skewed_mix_concentrates_draws_on_the_hot_prefix() {
        let mut skewed = TatpMix::with_skew(1_000, 5, 1.2);
        let mut uniform = TatpMix::new(1_000, 5);
        let hot = |mix: &mut TatpMix| (0..2_000).filter(|_| mix.next_op().s_id() < 100).count();
        let (hot_skewed, hot_uniform) = (hot(&mut skewed), hot(&mut uniform));
        assert!(
            hot_skewed > 2 * hot_uniform,
            "zipf 1.2 should hammer the hot 10%: {hot_skewed} vs {hot_uniform}"
        );
        // Determinism holds for the skewed draw too.
        let mut a = TatpMix::with_skew(1_000, 6, 0.8);
        let mut b = TatpMix::with_skew(1_000, 6, 0.8);
        for _ in 0..128 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn skew_shift_moves_the_hot_set_mid_stream() {
        let mut mix = TatpMix::with_skew_shift(1_000, 5, 1.2, 2_000);
        let hot_prefix =
            |mix: &mut TatpMix, n: usize| (0..n).filter(|_| mix.next_op().s_id() < 100).count();
        let hot_middle = |mix: &mut TatpMix, n: usize| {
            (0..n)
                .filter(|_| (500..600).contains(&mix.next_op().s_id()))
                .count()
        };
        // Before the shift: hot set at the low end of the key space.
        let before = hot_prefix(&mut mix, 1_000);
        assert!(before > 300, "pre-shift hot prefix too cold: {before}");
        // Burn past the shift point, then the hot set sits mid-space.
        while mix.drawn <= 2_000 {
            mix.next_op();
        }
        let after_mid = hot_middle(&mut mix, 1_000);
        let after_prefix = hot_prefix(&mut mix, 1_000);
        assert!(
            after_mid > 300,
            "post-shift hot middle too cold: {after_mid}"
        );
        assert!(
            after_prefix < before / 2,
            "old hotspot should cool off: {after_prefix} vs {before}"
        );
        // Determinism holds across the shift.
        let mut a = TatpMix::with_skew_shift(1_000, 6, 0.8, 50);
        let mut b = TatpMix::with_skew_shift(1_000, 6, 0.8, 50);
        for _ in 0..128 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn handoff_mix_steers_companion_reads_local_or_remote() {
        let wl = TatpWorkload {
            subscribers: 1_000,
            seed: 1,
        };
        let db = Database::default();
        let t = wl.load(&db);
        let rt = wl.routing(t, 4);
        let check = |remote_pct: u64| {
            let mut mix = TatpMix::update_location_handoff(1_000, 11, 4, remote_pct);
            let mut remote = 0;
            for _ in 0..256 {
                match mix.next_op() {
                    TatpOp::UpdateLocation {
                        s_id,
                        handoff_from: Some(from),
                        ..
                    } => {
                        if rt.owner_of(t.subscriber, s_id) != rt.owner_of(t.subscriber, from) {
                            remote += 1;
                        }
                    }
                    other => panic!("handoff mix drew {other:?}"),
                }
            }
            remote
        };
        assert_eq!(check(0), 0, "0% remote must stay partition-local");
        assert_eq!(check(100), 256, "100% remote must always cross");
        let half = check(50);
        assert!((64..192).contains(&half), "~50% should cross: {half}");
    }

    /// Runs `op` through the serial flow harness, the serial request
    /// harness, and the model interpreter on three identically-loaded
    /// databases; every pair must agree on outcome, digest, and final
    /// state.
    fn assert_three_way_agreement(wl: &TatpWorkload, ops: &[TatpOp]) {
        let (flow_db, req_db, model_db) = (
            Database::default(),
            Database::default(),
            Database::default(),
        );
        let ft = wl.load(&flow_db);
        let rt = wl.load(&req_db);
        let mt = wl.load(&model_db);
        for op in ops {
            let flow_sink = ResultSink::new();
            let req_sink = ResultSink::new();
            let f = run_flow_serial(&flow_db, flow_of(ft, op, Some(flow_sink.clone())));
            let r = run_request_serial(&req_db, &request_of(rt, op, Some(req_sink.clone())));
            let m = apply_model(&model_db, mt, op);
            assert_eq!(f.committed, r.committed, "{op:?}: flow vs request");
            assert_eq!(f.committed, m.is_ok(), "{op:?}: flow vs model");
            match &m {
                Ok(digest) => {
                    assert_eq!(&flow_sink.take(), digest, "{op:?}: flow digest");
                    assert_eq!(&req_sink.take(), digest, "{op:?}: request digest");
                }
                Err(reason) => {
                    assert_eq!(f.reason.as_deref(), Some(reason.as_str()), "{op:?}");
                    assert_eq!(r.reason.as_deref(), Some(reason.as_str()), "{op:?}");
                    assert!(reason.contains(MISS), "{op:?}: unexpected abort {reason}");
                }
            }
        }
        assert_eq!(all_sorted(&flow_db, ft), all_sorted(&req_db, rt));
        assert_eq!(all_sorted(&flow_db, ft), all_sorted(&model_db, mt));
    }

    #[test]
    fn both_forms_and_model_agree_on_a_serial_stream() {
        let wl = TatpWorkload {
            subscribers: 32,
            seed: 13,
        };
        let mut mix = TatpMix::new(32, 21);
        let ops: Vec<TatpOp> = (0..300).map(|_| mix.next_op()).collect();
        assert_three_way_agreement(&wl, &ops);
    }

    #[test]
    fn expected_miss_cases_abort_cleanly_in_all_forms() {
        let wl = TatpWorkload {
            subscribers: 8,
            seed: 3,
        };
        // Handcrafted ops that must miss: absent subscriber rows can't
        // happen from a mix (draws stay in range), so probe types/slots
        // that may not exist and verify the miss marker, then re-run the
        // same insert to force the duplicate path.
        let ops = vec![
            TatpOp::GetAccessData {
                s_id: 0,
                ai_type: 4,
            },
            TatpOp::GetNewDestination {
                s_id: 1,
                sf_type: 4,
                start_time: 16,
                end_time: 24,
            },
            TatpOp::UpdateSubscriberData {
                s_id: 2,
                bit_1: true,
                data_a: 9,
                sf_type: 4,
            },
            TatpOp::DeleteCallForwarding {
                s_id: 3,
                sf_type: 1,
                start_time: 16,
            },
            TatpOp::InsertCallForwarding {
                s_id: 4,
                sf_type: 1,
                start_time: 0,
                end_time: 5,
                numberx: 77,
            },
            // Same slot again: duplicate-key expected failure (when the
            // first insert committed) or no-facility miss (when it did
            // not) — either way all three executors must agree.
            TatpOp::InsertCallForwarding {
                s_id: 4,
                sf_type: 1,
                start_time: 0,
                end_time: 5,
                numberx: 78,
            },
        ];
        assert_three_way_agreement(&wl, &ops);
    }

    #[test]
    fn update_subscriber_miss_rolls_back_the_subscriber_write() {
        let wl = TatpWorkload {
            subscribers: 4,
            seed: 2,
        };
        let db = Database::default();
        let t = wl.load(&db);
        let before = sorted_rows(&db, t.subscriber);
        // Find a subscriber lacking some sf_type so the facility update
        // misses after the subscriber write succeeded.
        let facilities = sorted_rows(&db, t.special_facility);
        let (s_id, sf_type) = (0..4)
            .find_map(|s| {
                (1..=4)
                    .find(|sf| {
                        !facilities
                            .iter()
                            .any(|r| r[0] == Value::BigInt(s) && r[1] == Value::BigInt(*sf))
                    })
                    .map(|sf| (s, sf))
            })
            .expect("some facility type must be absent at this scale");
        let bit_flip = before
            .iter()
            .find(|r| r[0] == Value::BigInt(s_id))
            .map(|r| r[2] != Value::Bool(true))
            .unwrap();
        let op = TatpOp::UpdateSubscriberData {
            s_id,
            bit_1: bit_flip,
            data_a: 123,
            sf_type,
        };
        let out = run_flow_serial(&db, flow_of(t, &op, None));
        assert!(!out.committed);
        assert!(out.reason.unwrap().contains(MISS));
        assert_eq!(
            sorted_rows(&db, t.subscriber),
            before,
            "aborted facility miss must roll back the bit_1 write"
        );
    }

    #[test]
    fn flow_shapes_match_the_decomposition_story() {
        let t = TatpTables {
            subscriber: 1,
            access_info: 2,
            special_facility: 3,
            call_forwarding: 4,
        };
        let single = flow_of(t, &TatpOp::GetSubscriberData { s_id: 5 }, None);
        assert_eq!((single.phase_count(), single.first_phase_len()), (1, 1));
        let gnd = flow_of(
            t,
            &TatpOp::GetNewDestination {
                s_id: 5,
                sf_type: 1,
                start_time: 0,
                end_time: 10,
            },
            None,
        );
        assert_eq!((gnd.phase_count(), gnd.first_phase_len()), (2, 2));
        let icf = flow_of(
            t,
            &TatpOp::InsertCallForwarding {
                s_id: 5,
                sf_type: 1,
                start_time: 0,
                end_time: 5,
                numberx: 1,
            },
            None,
        );
        assert_eq!((icf.phase_count(), icf.first_phase_len()), (2, 1));
        let handoff = flow_of(
            t,
            &TatpOp::UpdateLocation {
                s_id: 5,
                vlr_location: 1,
                handoff_from: Some(9),
            },
            None,
        );
        assert_eq!((handoff.phase_count(), handoff.first_phase_len()), (2, 2));
    }

    #[test]
    fn both_engines_execute_the_standard_mix_and_agree() {
        let wl = TatpWorkload {
            subscribers: 48,
            seed: 17,
        };
        let dora_db = Arc::new(Database::default());
        let conv_db = Arc::new(Database::default());
        let model_db = Database::default();
        let dt = wl.load(&dora_db);
        let ct = wl.load(&conv_db);
        let mt = wl.load(&model_db);
        let dora = DoraEngine::new(
            dora_db.clone(),
            wl.routing(dt, 2),
            DoraEngineConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let conv = ConvEngine::new(
            conv_db.clone(),
            ConvEngineConfig {
                workers: 2,
                max_retries: 10,
            },
        );
        let mut mix = TatpMix::new(48, 23);
        let (mut committed, mut missed) = (0, 0);
        for _ in 0..200 {
            let op = mix.next_op();
            let sink_d = ResultSink::new();
            let sink_c = ResultSink::new();
            let d = dora.execute(flow_of(dt, &op, Some(sink_d.clone())));
            let c = conv.execute(request_of(ct, &op, Some(sink_c.clone())));
            let m = apply_model(&model_db, mt, &op);
            assert_eq!(d.is_committed(), m.is_ok(), "{op:?}: dora vs model");
            assert_eq!(c.is_committed(), m.is_ok(), "{op:?}: conv vs model");
            match m {
                Ok(digest) => {
                    committed += 1;
                    assert_eq!(sink_d.take(), digest, "{op:?}");
                    assert_eq!(sink_c.take(), digest, "{op:?}");
                }
                Err(reason) => {
                    missed += 1;
                    assert!(reason.contains(MISS), "{op:?}: {reason}");
                    if let TxnOutcome::Aborted { reason: dr } = &d {
                        assert_eq!(dr, &reason, "{op:?}");
                    }
                }
            }
        }
        assert!(committed > 50, "stream must commit plenty: {committed}");
        assert!(missed > 10, "stream must also miss: {missed}");
        assert_eq!(all_sorted(&dora_db, dt), all_sorted(&model_db, mt));
        assert_eq!(all_sorted(&conv_db, ct), all_sorted(&model_db, mt));
        TatpWorkload::check_integrity(&dora_db, dt).unwrap();
        dora.shutdown();
        conv.shutdown();
    }

    #[test]
    fn integrity_audit_commits_on_both_engines_and_flags_orphans() {
        let wl = TatpWorkload {
            subscribers: 16,
            seed: 5,
        };
        let db = Arc::new(Database::default());
        let t = wl.load(&db);
        let dora = DoraEngine::new(
            db.clone(),
            wl.routing(t, 2),
            DoraEngineConfig {
                workers: 2,
                ..Default::default()
            },
        );
        assert!(dora
            .execute(integrity_audit_flow(t, wl.subscribers - 1))
            .is_committed());
        let conv = ConvEngine::new(db.clone(), ConvEngineConfig::default());
        assert!(conv
            .execute(integrity_audit_request(t, wl.subscribers - 1))
            .is_committed());

        // Plant an orphan (loader-style raw insert, outside any txn) and
        // both audit forms must abort with the distinctive reason.
        db.insert_raw(
            t.call_forwarding,
            vec![
                Value::BigInt(3),
                Value::BigInt(99),
                Value::BigInt(0),
                Value::BigInt(5),
                Value::Varchar(sub_nbr(1)),
            ],
        )
        .unwrap();
        let out = dora.execute(integrity_audit_flow(t, wl.subscribers - 1));
        assert!(
            matches!(&out, TxnOutcome::Aborted { reason } if reason.contains("no special_facility parent")),
            "{out:?}"
        );
        let out = conv.execute(integrity_audit_request(t, wl.subscribers - 1));
        assert!(!out.is_committed());
        dora.shutdown();
        conv.shutdown();
    }
}
