//! Property tests for the TATP workload: decomposition equivalence and
//! mix determinism.
//!
//! The decomposition-equivalence property is the reusable pattern future
//! workloads inherit: load identical databases, draw a random operation
//! stream, and replay it through the serial harness
//! ([`run_flow_serial`] / [`run_request_serial`]) and the model
//! interpreter — the DORA `FlowGraph` decomposition, the conventional
//! body, and the model must agree on every commit/abort decision, every
//! abort reason, every committed digest, and the final state. Because the
//! harness is serial, any disagreement is a decomposition bug, never a
//! concurrency artifact.

use dora_workloads::dora_storage::db::Database;
use dora_workloads::dora_storage::types::{TableId, Value};
use dora_workloads::harness::{run_flow_serial, run_request_serial};
use dora_workloads::tatp::{
    self, flow_of, request_of, ResultSink, TatpMix, TatpOp, TatpTables, TatpWorkload, MISS,
    STANDARD_MIX_PCT,
};

use proptest::prelude::*;

fn sorted_rows(db: &Database, t: TableId) -> Vec<Vec<Value>> {
    let mut rows = db.scan(t).expect("scan");
    rows.sort();
    rows
}

fn all_sorted(db: &Database, t: TatpTables) -> Vec<Vec<Vec<Value>>> {
    [
        t.subscriber,
        t.access_info,
        t.special_facility,
        t.call_forwarding,
    ]
    .iter()
    .map(|&table| sorted_rows(db, table))
    .collect()
}

/// The reusable equivalence check: replays `ops` through all three
/// executors on identically-loaded databases and asserts agreement per
/// transaction and on the final states.
fn check_decomposition_equivalence(wl: &TatpWorkload, ops: &[TatpOp]) {
    let (flow_db, req_db, model_db) = (
        Database::default(),
        Database::default(),
        Database::default(),
    );
    let ft = wl.load(&flow_db);
    let rt = wl.load(&req_db);
    let mt = wl.load(&model_db);
    for op in ops {
        let flow_sink = ResultSink::new();
        let req_sink = ResultSink::new();
        let f = run_flow_serial(&flow_db, flow_of(ft, op, Some(flow_sink.clone())));
        let r = run_request_serial(&req_db, &request_of(rt, op, Some(req_sink.clone())));
        let m = tatp::apply_model(&model_db, mt, op);
        prop_assert_eq!(f.committed, r.committed, "flow vs request for {:?}", op);
        prop_assert_eq!(f.committed, m.is_ok(), "flow vs model for {:?}", op);
        match &m {
            Ok(digest) => {
                prop_assert_eq!(&flow_sink.take(), digest, "flow digest for {:?}", op);
                prop_assert_eq!(&req_sink.take(), digest, "request digest for {:?}", op);
            }
            Err(reason) => {
                prop_assert_eq!(f.reason.as_deref(), Some(reason.as_str()), "{:?}", op);
                prop_assert_eq!(r.reason.as_deref(), Some(reason.as_str()), "{:?}", op);
                prop_assert!(
                    reason.contains(MISS),
                    "serial aborts must be expected misses: {:?} -> {}",
                    op,
                    reason
                );
            }
        }
    }
    prop_assert_eq!(all_sorted(&flow_db, ft), all_sorted(&req_db, rt));
    prop_assert_eq!(all_sorted(&flow_db, ft), all_sorted(&model_db, mt));
}

proptest! {
    /// Satellite: for every TATP transaction type, the `FlowGraph`
    /// decomposition applied to a random database state produces the same
    /// reads, writes, and abort decision as the conventional body.
    #[test]
    fn flow_decomposition_matches_conventional_body(
        params in (2i64..24, 1u64..10_000, 1u64..10_000)
    ) {
        let (subscribers, load_seed, mix_seed) = params;
        let wl = TatpWorkload { subscribers, seed: load_seed };
        // Small, dense databases make misses and duplicate-key collisions
        // frequent, so the abort paths get real coverage; 32 ops per case
        // x 128 cases x 7 transaction types covers every decomposition
        // against many random states.
        let mut mix = TatpMix::new(subscribers, mix_seed);
        let ops: Vec<TatpOp> = (0..32).map(|_| mix.next_op()).collect();
        check_decomposition_equivalence(&wl, &ops);
    }

    /// Satellite: same seed ⇒ byte-identical operation stream, for the
    /// uniform, key-blocked, skewed, and handoff mix variants alike.
    #[test]
    fn mix_same_seed_yields_identical_streams(
        params in (2i64..100_000, 1u64..u64::MAX, 1usize..5)
    ) {
        let (subscribers, seed, variant) = params;
        let build = || match variant {
            1 => TatpMix::new(subscribers, seed),
            2 => {
                let half = subscribers / 2;
                TatpMix::new(subscribers, seed).with_key_block(0, half.max(0))
            }
            3 => TatpMix::with_skew(subscribers, seed, 0.8),
            _ => TatpMix::update_location_handoff(subscribers, seed, 4, 50),
        };
        let (mut a, mut b) = (build(), build());
        let mut c = TatpMix::new(subscribers, seed.wrapping_add(1));
        let mut diverged = false;
        for _ in 0..256 {
            let op = a.next_op();
            prop_assert_eq!(&op, &b.next_op());
            if variant == 1 && op != c.next_op() {
                diverged = true;
            }
        }
        if variant == 1 {
            prop_assert!(diverged, "seed {} and {} gave one stream", seed, seed.wrapping_add(1));
        }
    }
}

/// Satellite: the standard 80/16/4 mix ratios hold within tolerance over
/// 100k draws (a plain test, not a proptest — one big sample beats 128
/// small ones for a ratio check, and keeps the suite fast).
#[test]
fn mix_ratios_hold_over_100k_draws() {
    const DRAWS: usize = 100_000;
    let mut mix = TatpMix::new(10_000, 4242);
    let mut counts = [0usize; 7];
    for _ in 0..DRAWS {
        let idx = match mix.next_op() {
            TatpOp::GetSubscriberData { .. } => 0,
            TatpOp::GetNewDestination { .. } => 1,
            TatpOp::GetAccessData { .. } => 2,
            TatpOp::UpdateSubscriberData { .. } => 3,
            TatpOp::UpdateLocation { .. } => 4,
            TatpOp::InsertCallForwarding { .. } => 5,
            TatpOp::DeleteCallForwarding { .. } => 6,
        };
        counts[idx] += 1;
    }
    // Per-transaction percentages within ±0.75 points absolute (the
    // binomial standard deviation at 100k draws is at most ~0.15 points,
    // so this is a five-sigma envelope).
    for (i, (&count, &pct)) in counts.iter().zip(STANDARD_MIX_PCT.iter()).enumerate() {
        let observed = 100.0 * count as f64 / DRAWS as f64;
        assert!(
            (observed - pct as f64).abs() < 0.75,
            "op {i}: expected ~{pct}%, observed {observed:.2}%"
        );
    }
    // And the headline 80/16/4 read/update/insert-delete split.
    let reads = counts[0] + counts[1] + counts[2];
    let updates = counts[3] + counts[4];
    let churn = counts[5] + counts[6];
    let pct = |n: usize| 100.0 * n as f64 / DRAWS as f64;
    assert!((pct(reads) - 80.0).abs() < 1.0, "reads {:.2}%", pct(reads));
    assert!(
        (pct(updates) - 16.0).abs() < 1.0,
        "updates {:.2}%",
        pct(updates)
    );
    assert!((pct(churn) - 4.0).abs() < 0.5, "churn {:.2}%", pct(churn));
}
