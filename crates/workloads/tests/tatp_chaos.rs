//! The TATP **chaos oracle**: the contended differential oracle re-run
//! with partition workers being killed underneath it.
//!
//! The self-healing supervisor's contract (see `docs/architecture.md`,
//! "Supervision & chaos") is availability without anomalies: a dead
//! partition worker is detected, every in-flight transaction whose lock
//! state it held aborts **retryably** (`WorkerUnavailable`), the
//! partition's queues are salvaged, and a replacement worker resumes
//! serving — while unaffected partitions keep committing and no acked
//! commit is ever lost. This suite drives that contract three ways:
//!
//! * [`chaos_schedules_preserve_acked_commits_and_integrity`] — a
//!   proptest drawing random [`ChaosPlan`] seeds: each case runs a
//!   contended TATP stream under a fresh seeded plan (worker kills at
//!   the Nth dequeue, delivery delays, forced admission pressure) and
//!   asserts the invariants below.
//! * [`chaos_campaign_under_seeded_kill_schedules`] — the CI campaign:
//!   `CHAOS_SCHEDULES` consecutive seeds (25+ in CI, release), each a
//!   full-size stream where at least one kill must actually fire and be
//!   recovered.
//! * [`contended_oracle_with_mid_stream_worker_kill`] — the engine's
//!   public `kill_worker` fault injection fired once mid-stream, i.e.
//!   the availability bench's scenario under the oracle's microscope.
//!
//! Invariants, every run: every abort belongs to an allowed retryable
//! class (expected TATP misses, lock/validation artifacts, admission
//! back-pressure, or the dead-worker taxonomy), TATP referential
//! integrity holds at quiescence, the call-forwarding row count equals
//! the acked insert/delete ledger exactly (acked commits survive the
//! kill; unacked work leaves no trace), every fired kill is matched by a
//! worker restart, and every partition serves fresh transactions after
//! the chaos ends.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use dora_workloads::dora_core::chaos::ChaosPlan;
use dora_workloads::dora_core::executor::{DoraEngine, DoraEngineConfig, TxnOutcome};
use dora_workloads::dora_storage::db::Database;
use dora_workloads::tatp::{self, flow_of, integrity_audit_flow, TatpMix, TatpWorkload, MISS};

use proptest::prelude::*;

const WORKERS: usize = 4;
const CLIENTS: usize = 4;
const SUBSCRIBERS: i64 = 64; // small and hot: plenty of key overlap

/// Seeded schedules the campaign test runs (CI pins 25+ in release).
fn schedules() -> u64 {
    std::env::var("CHAOS_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 3 } else { 8 })
}

/// Transactions per campaign schedule.
fn campaign_total() -> usize {
    if cfg!(debug_assertions) {
        400
    } else {
        2_000
    }
}

/// An abort reason a chaos run is allowed to produce: everything the
/// plain contended oracle allows, plus the dead-worker taxonomy
/// (`WorkerUnavailable` renders as "partition worker unavailable
/// (retryable): ...") and admission back-pressure from the forced
/// admission-failure hook.
fn allowed_chaos_abort(reason: &str) -> bool {
    reason.contains(MISS)
        || reason.contains("lock")
        || reason.contains("deadlock")
        || reason.contains("uncommitted")
        || reason.contains("timed out")
        || reason.contains("timeout")
        || reason.contains("worker unavailable")
        || reason.contains("back-pressure")
}

/// One contended TATP stream against a DORA engine with chaos installed
/// (or a deliberate kill fired by `kill_at_half`). Asserts the full
/// oracle contract; returns (committed, aborted, kills_fired).
fn chaos_contended_run(
    plan: Option<ChaosPlan>,
    total: usize,
    kill_at_half: bool,
) -> (u64, u64, u64) {
    let wl = TatpWorkload {
        subscribers: SUBSCRIBERS,
        seed: 31,
    };
    let db = Arc::new(Database::default());
    let t = wl.load(&db);
    let engine = DoraEngine::new(
        db.clone(),
        wl.routing(t, WORKERS),
        DoraEngineConfig {
            workers: WORKERS,
            // Short enough that a lock parked behind a doomed holder
            // resolves quickly even if a probe is lost to the chaos
            // delivery delays; long enough not to thrash.
            lock_timeout: std::time::Duration::from_millis(500),
            submit_timeout: std::time::Duration::from_millis(500),
            ..Default::default()
        },
    );
    if let Some(plan) = plan {
        engine.install_chaos(plan);
    }

    let cf_initial = db.row_count(t.call_forwarding).expect("cf count") as i64;
    let cf_delta = AtomicI64::new(0);
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let per_client = total / CLIENTS;
    let expect = (per_client * CLIENTS) as u64;

    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let engine = &engine;
            let (committed, aborted, cf_delta) = (&committed, &aborted, &cf_delta);
            s.spawn(move || {
                let mut mix = TatpMix::new(SUBSCRIBERS, 7_000 + client as u64);
                for _ in 0..per_client {
                    let op = mix.next_op();
                    match engine.execute(flow_of(t, &op, None)) {
                        TxnOutcome::Committed => {
                            committed.fetch_add(1, Ordering::Relaxed);
                            cf_delta.fetch_add(op.cf_delta(), Ordering::Relaxed);
                        }
                        TxnOutcome::Aborted { reason } => {
                            aborted.fetch_add(1, Ordering::Relaxed);
                            assert!(
                                allowed_chaos_abort(&reason),
                                "unexpected abort class under chaos: {op:?} -> {reason}"
                            );
                        }
                    }
                }
            });
        }
        // Concurrent integrity auditor: referential integrity must hold
        // at every instant, including while a partition is mid-recovery.
        let (engine, done) = (&engine, &done);
        s.spawn(move || {
            let mut audits = 0u32;
            while !done.load(Ordering::Acquire) {
                if let TxnOutcome::Aborted { reason } =
                    engine.execute(integrity_audit_flow(t, SUBSCRIBERS - 1))
                {
                    assert!(
                        !reason.contains("no special_facility parent"),
                        "integrity audit found orphans mid-chaos: {reason}"
                    );
                    assert!(allowed_chaos_abort(&reason), "audit abort: {reason}");
                }
                audits += 1;
                std::thread::yield_now();
            }
            assert!(audits > 0);
        });
        // The deliberate mid-stream kill (the availability scenario): one
        // worker dies once the stream is half done.
        let (committed, aborted) = (&committed, &aborted);
        s.spawn(move || {
            let mut killed = !kill_at_half;
            loop {
                let so_far = committed.load(Ordering::Relaxed) + aborted.load(Ordering::Relaxed);
                if !killed && so_far >= expect / 2 {
                    assert!(engine.kill_worker(1), "mid-stream kill must be accepted");
                    killed = true;
                }
                if so_far >= expect {
                    done.store(true, Ordering::Release);
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        });
    });

    // Every kill that fired must be matched by a detected death and a
    // restarted worker before the oracle audits the remains.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    let kills = loop {
        let stats = engine.stats();
        if stats.worker_restarts >= stats.chaos_kills {
            break stats.chaos_kills;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "kills were never recovered: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    };

    // Convergence: every partition must serve and commit fresh work after
    // the chaos (their cf churn joins the conservation ledger).
    let block = SUBSCRIBERS / WORKERS as i64;
    for p in 0..WORKERS {
        let lo = p as i64 * block;
        let mut mix =
            TatpMix::new(SUBSCRIBERS, 9_000 + p as u64).with_key_block(lo, lo + block - 1);
        let mut served = false;
        for _ in 0..50 {
            let op = mix.next_op();
            match engine.execute(flow_of(t, &op, None)) {
                TxnOutcome::Committed => {
                    cf_delta.fetch_add(op.cf_delta(), Ordering::Relaxed);
                    served = true;
                    break;
                }
                TxnOutcome::Aborted { reason } => {
                    assert!(allowed_chaos_abort(&reason), "post-chaos abort: {reason}");
                }
            }
        }
        assert!(served, "partition {p} did not resume serving after chaos");
    }

    // Quiescent audit: integrity plus exact call-forwarding conservation
    // against the ACKED ledger — an acked commit that vanished or an
    // unacked one that leaked both show up as a count mismatch.
    TatpWorkload::check_integrity(&db, t).expect("TATP integrity after chaos");
    assert_eq!(
        db.row_count(t.call_forwarding).expect("cf count") as i64,
        cf_initial + cf_delta.load(Ordering::Relaxed),
        "call-forwarding rows conserved across worker kills"
    );
    let stranded = engine.shutdown();
    assert_eq!(stranded, 0, "no transaction may be stranded at shutdown");
    (
        committed.load(Ordering::Relaxed),
        aborted.load(Ordering::Relaxed),
        kills,
    )
}

proptest! {
    /// Random chaos plans (any seed) over short contended streams: the
    /// oracle contract must hold whether or not the drawn plan's kills
    /// fire inside so small a window. 128 deterministic cases.
    #[test]
    fn chaos_schedules_preserve_acked_commits_and_integrity(seed in any::<u64>()) {
        let total = if cfg!(debug_assertions) { 96 } else { 160 };
        let horizon = (total / 8).max(20) as u64;
        let (committed, _, _) =
            chaos_contended_run(Some(ChaosPlan::seeded(seed, WORKERS, horizon)), total, false);
        prop_assert!(committed > 0, "stream must make progress under chaos");
    }
}

/// The CI campaign: `CHAOS_SCHEDULES` consecutive seeds, full-size
/// streams, and the additional demand that the injected kills really
/// fired (a campaign that never killed anyone proves nothing).
#[test]
fn chaos_campaign_under_seeded_kill_schedules() {
    let n = schedules();
    let total = campaign_total();
    let horizon = (total / 8).max(50) as u64;
    let mut kills_fired = 0u64;
    for i in 0..n {
        let seed = 0xC0FFEE ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (committed, aborted, kills) = chaos_contended_run(
            Some(ChaosPlan::seeded(seed, WORKERS, horizon)),
            total,
            false,
        );
        assert_eq!(
            committed + aborted,
            total as u64,
            "schedule {i}: every transaction must reach a definite outcome"
        );
        kills_fired += kills;
    }
    assert!(
        kills_fired > 0,
        "campaign of {n} schedules never fired a kill — horizon too large?"
    );
    eprintln!("chaos campaign: {n} schedules, {kills_fired} worker kills recovered");
}

/// The availability bench's exact scenario under the oracle: a deliberate
/// `kill_worker` halfway through a contended stream. The kill must be
/// detected and recovered, and the stream's invariants must survive it.
#[test]
fn contended_oracle_with_mid_stream_worker_kill() {
    let total = if cfg!(debug_assertions) { 800 } else { 4_000 };
    let (committed, aborted, kills) = chaos_contended_run(None, total, true);
    assert_eq!(committed + aborted, total as u64);
    assert_eq!(kills, 1, "exactly the one deliberate kill");
    assert!(
        committed > total as u64 / 2,
        "the engine must keep committing through a worker death: \
         {committed}/{total}"
    );
}

/// `tatp` module smoke for the chaos feature plumbing: the re-exported
/// engine exposes the chaos API to integration tests (this line failing
/// to compile means the `chaos` feature fell off the dev-dependency).
#[test]
fn chaos_api_is_reachable_through_the_reexport() {
    let plan = ChaosPlan::seeded(7, WORKERS, 100);
    assert!(
        !plan.kills.is_empty(),
        "a seeded plan always schedules kills"
    );
    let _ = tatp::STANDARD_MIX_PCT;
}
