//! The TATP cross-engine **differential oracle**.
//!
//! One seeded operation stream is replayed through three executors —
//! [`DoraEngine`], [`ConvEngine`], and the single-threaded model
//! interpreter [`tatp::apply_model`] — and the oracle demands agreement:
//!
//! * **Per-transaction equivalence** (`oracle_per_txn_equivalence_*`):
//!   clients draw from *disjoint* subscriber blocks, so every
//!   transaction's outcome is deterministic even under concurrent
//!   execution, and all three executors must agree on the commit/abort
//!   decision, the abort reason byte-for-byte, and the committed digest
//!   (reads observed / values written). Afterwards the three databases
//!   must be identical, table by table.
//! * **Invariants under contention** (`oracle_invariants_under_*`):
//!   clients share one key range, so outcomes race — per-transaction
//!   comparison is meaningless, but TATP's referential integrity must
//!   hold at every instant (checked by concurrent audit transactions
//!   through the validated-read path) and at quiescence, and the
//!   call-forwarding row count must be exactly conserved across
//!   insert/delete churn.
//!
//! # Why TATP's access shapes dodge the documented phantom gap
//!
//! PR 4 documented a membership gap in the validated-read protocol: a
//! `scan_validated` resolves membership with an as-of index probe, so a
//! row whose **uncommitted delete** is in flight reads as absent — if the
//! deleter later aborts, the scan observed a row set no serial order
//! produces. TATP's only range read is `GetNewDestination`'s
//! call-forwarding scan, and both engines keep it safe structurally:
//!
//! * **DORA**: the scan runs inside an action holding the partition-local
//!   *read* intent on `(call_forwarding, s_id)`, while every CF insert or
//!   delete of that subscriber holds the *write* intent on the same key.
//!   The local lock table serializes them — no uncommitted CF churn of
//!   the scanned subscriber can be in flight during the scan, and rows of
//!   other subscribers fall outside the scan bounds entirely.
//! * **Conventional**: CF writers hold centralized row locks and their
//!   writer stamps are visible, so a scan that touches an in-flight
//!   *update or insert* fails with `ReadUncommitted` and the engine's
//!   retry loop re-runs the body after the writer finishes. The one
//!   remaining hole — the uncommitted-*delete*-reads-as-absent case — is
//!   pinned precisely, at the storage layer, by
//!   `scan_validated_membership_gap_uncommitted_delete_reads_as_absent`
//!   in `crates/storage/src/db.rs`; it cannot corrupt this oracle's
//!   invariant checks (integrity and count conservation are evaluated on
//!   committed state) and is why the contended test compares invariants,
//!   not digests.
//!
//! Stream length: `TATP_ORACLE_TOTAL` env var, defaulting to 20k
//! transactions in debug builds and 100k in release (CI runs the release
//! oracle at 100k with 4 workers — the acceptance bar).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use dora_workloads::dora_core::executor::{DoraEngine, DoraEngineConfig, TxnOutcome};
use dora_workloads::dora_engine_conv::{ConvEngine, ConvEngineConfig};
use dora_workloads::dora_storage::db::Database;
use dora_workloads::dora_storage::types::{TableId, Value};
use dora_workloads::tatp::{
    self, flow_of, integrity_audit_flow, integrity_audit_request, request_of, ResultSink, TatpMix,
    TatpTables, TatpWorkload, MISS,
};

const WORKERS: usize = 4;
const CLIENTS: usize = 4;

fn stream_total() -> usize {
    std::env::var("TATP_ORACLE_TOTAL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) {
            20_000
        } else {
            100_000
        })
}

fn sorted_rows(db: &Database, t: TableId) -> Vec<Vec<Value>> {
    let mut rows = db.scan(t).expect("scan");
    rows.sort();
    rows
}

fn all_sorted(db: &Database, t: TatpTables) -> Vec<Vec<Vec<Value>>> {
    [
        t.subscriber,
        t.access_info,
        t.special_facility,
        t.call_forwarding,
    ]
    .iter()
    .map(|&table| sorted_rows(db, table))
    .collect()
}

/// An abort reason the contended run is allowed to produce: an expected
/// TATP miss, or a concurrency artifact of the engine (lock timeout,
/// deadlock victim, validated-read conflict that exhausted retries,
/// admission back-pressure). Anything else — above all an integrity-audit
/// orphan report — fails the oracle.
fn allowed_contended_abort(reason: &str) -> bool {
    reason.contains(MISS)
        || reason.contains("lock")
        || reason.contains("deadlock")
        || reason.contains("uncommitted")
        || reason.contains("timed out")
        || reason.contains("timeout")
}

#[test]
fn oracle_per_txn_equivalence_disjoint_streams() {
    let total = stream_total();
    let subscribers: i64 = 400; // divisible by CLIENTS and WORKERS
    let wl = TatpWorkload {
        subscribers,
        seed: 99,
    };

    let dora_db = Arc::new(Database::default());
    let conv_db = Arc::new(Database::default());
    let model_db = Database::default();
    let dt = wl.load(&dora_db);
    let ct = wl.load(&conv_db);
    let mt = wl.load(&model_db);
    assert_eq!(all_sorted(&dora_db, dt), all_sorted(&model_db, mt));

    let dora = DoraEngine::new(
        dora_db.clone(),
        wl.routing(dt, WORKERS),
        DoraEngineConfig {
            workers: WORKERS,
            ..Default::default()
        },
    );
    let conv = ConvEngine::new(
        conv_db.clone(),
        ConvEngineConfig {
            workers: WORKERS,
            max_retries: 20,
        },
    );

    let cf_initial = model_db.row_count(mt.call_forwarding).expect("cf count") as i64;
    let cf_delta = AtomicI64::new(0);
    let committed_total = AtomicU64::new(0);
    let missed_total = AtomicU64::new(0);
    let block = subscribers / CLIENTS as i64;

    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (dora, conv) = (&dora, &conv);
            let (model_db, cf_delta) = (&model_db, &cf_delta);
            let (committed_total, missed_total) = (&committed_total, &missed_total);
            let per_client = total / CLIENTS;
            s.spawn(move || {
                let lo = client as i64 * block;
                let mut mix = TatpMix::new(subscribers, 1_000 + client as u64)
                    .with_key_block(lo, lo + block - 1);
                for i in 0..per_client {
                    let op = mix.next_op();
                    let sink_d = ResultSink::new();
                    let sink_c = ResultSink::new();
                    let d = dora.execute(flow_of(dt, &op, Some(sink_d.clone())));
                    let c = conv.execute(request_of(ct, &op, Some(sink_c.clone())));
                    let m = tatp::apply_model(model_db, mt, &op);
                    assert_eq!(
                        d.is_committed(),
                        m.is_ok(),
                        "client {client} txn {i}: dora vs model for {op:?} ({d:?} vs {m:?})"
                    );
                    assert_eq!(
                        c.is_committed(),
                        m.is_ok(),
                        "client {client} txn {i}: conv vs model for {op:?} ({c:?} vs {m:?})"
                    );
                    match m {
                        Ok(digest) => {
                            committed_total.fetch_add(1, Ordering::Relaxed);
                            cf_delta.fetch_add(op.cf_delta(), Ordering::Relaxed);
                            assert_eq!(sink_d.take(), digest, "dora digest for {op:?}");
                            assert_eq!(sink_c.take(), digest, "conv digest for {op:?}");
                        }
                        Err(reason) => {
                            missed_total.fetch_add(1, Ordering::Relaxed);
                            assert!(
                                reason.contains(MISS),
                                "disjoint streams only miss, never conflict: {op:?} -> {reason}"
                            );
                            if let TxnOutcome::Aborted { reason: dr } = &d {
                                assert_eq!(dr, &reason, "dora abort reason for {op:?}");
                            }
                            if let dora_workloads::dora_engine_conv::TxnOutcome::Aborted {
                                reason: cr,
                            } = &c
                            {
                                assert_eq!(cr, &reason, "conv abort reason for {op:?}");
                            }
                        }
                    }
                }
            });
        }
    });

    dora.shutdown();
    conv.shutdown();

    let committed = committed_total.load(Ordering::Relaxed);
    let missed = missed_total.load(Ordering::Relaxed);
    assert_eq!(committed + missed, (total / CLIENTS * CLIENTS) as u64);
    assert!(
        committed as f64 > 0.5 * total as f64,
        "stream must commit most transactions: {committed}/{total}"
    );
    assert!(
        missed > 0,
        "stream must exercise the expected-failure paths"
    );

    // Three-way final-state equality, referential integrity, and exact
    // call-forwarding count conservation across the insert/delete churn.
    assert_eq!(all_sorted(&dora_db, dt), all_sorted(&model_db, mt));
    assert_eq!(all_sorted(&conv_db, ct), all_sorted(&model_db, mt));
    for (db, t) in [(&*dora_db, dt), (&*conv_db, ct), (&model_db, mt)] {
        TatpWorkload::check_integrity(db, t).expect("TATP integrity");
        assert_eq!(
            db.row_count(t.call_forwarding).expect("cf count") as i64,
            cf_initial + cf_delta.load(Ordering::Relaxed),
            "call-forwarding rows conserved"
        );
    }
}

/// The equivalence oracle with **rebalances injected mid-stream**: a
/// migrator thread keeps carving subscriber and call-forwarding ranges
/// between workers while the clients run, so transactions are routed,
/// parked, transferred, and forwarded across live ownership handoffs —
/// and the three executors must still agree per transaction, the three
/// databases must end identical, and TATP referential integrity must
/// hold. TATP actions carry a single `(table, s_id)` key each, so no
/// migration may ever abort one; a retry loop guards the two retryable
/// migration abort classes and the oracle asserts it stayed cold.
#[test]
fn oracle_per_txn_equivalence_with_mid_stream_rebalances() {
    let total = (stream_total() / 4).max(4_000);
    let subscribers: i64 = 400;
    let wl = TatpWorkload {
        subscribers,
        seed: 57,
    };

    let dora_db = Arc::new(Database::default());
    let conv_db = Arc::new(Database::default());
    let model_db = Database::default();
    let dt = wl.load(&dora_db);
    let ct = wl.load(&conv_db);
    let mt = wl.load(&model_db);

    let dora = DoraEngine::new(
        dora_db.clone(),
        wl.routing(dt, WORKERS),
        DoraEngineConfig {
            workers: WORKERS,
            ..Default::default()
        },
    );
    let conv = ConvEngine::new(
        conv_db.clone(),
        ConvEngineConfig {
            workers: WORKERS,
            max_retries: 20,
        },
    );

    let block = subscribers / CLIENTS as i64;
    let done = AtomicBool::new(false);
    let migrated = AtomicU64::new(0);
    let retried = AtomicU64::new(0);
    let finished = AtomicU64::new(0);

    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (dora, conv) = (&dora, &conv);
            let model_db = &model_db;
            let (retried, finished) = (&retried, &finished);
            let per_client = total / CLIENTS;
            s.spawn(move || {
                let lo = client as i64 * block;
                let mut mix = TatpMix::new(subscribers, 5_000 + client as u64)
                    .with_key_block(lo, lo + block - 1);
                for i in 0..per_client {
                    let op = mix.next_op();
                    let (d, sink_d) = loop {
                        let sink = ResultSink::new();
                        let outcome = dora.execute(flow_of(dt, &op, Some(sink.clone())));
                        match &outcome {
                            TxnOutcome::Aborted { reason }
                                if reason.contains("range migration")
                                    || reason.contains("routing changed") =>
                            {
                                retried.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => break (outcome, sink),
                        }
                    };
                    let sink_c = ResultSink::new();
                    let c = conv.execute(request_of(ct, &op, Some(sink_c.clone())));
                    let m = tatp::apply_model(model_db, mt, &op);
                    assert_eq!(
                        d.is_committed(),
                        m.is_ok(),
                        "client {client} txn {i}: dora vs model for {op:?} ({d:?} vs {m:?})"
                    );
                    assert_eq!(
                        c.is_committed(),
                        m.is_ok(),
                        "client {client} txn {i}: conv vs model for {op:?} ({c:?} vs {m:?})"
                    );
                    if let Ok(digest) = m {
                        assert_eq!(sink_d.take(), digest, "dora digest for {op:?}");
                        assert_eq!(sink_c.take(), digest, "conv digest for {op:?}");
                    }
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }
        // The migrator: sweep 25-key blocks of both routed-hot tables
        // across workers, rotating the destination each round, until
        // every client is done. Lost races (a block fragmented across
        // owners by an earlier carve) are skipped, not retried.
        let (dora, done, migrated) = (&dora, &done, &migrated);
        let finished = &finished;
        s.spawn(move || {
            let mut round = 0usize;
            while !done.load(Ordering::Acquire) {
                for chunk in 0..(subscribers / 25) as usize {
                    let lo = chunk as i64 * 25;
                    for table in [dt.subscriber, dt.call_forwarding] {
                        let dest = (chunk + round) % WORKERS;
                        if let Ok(r) = dora.migrate_range(table, lo, lo + 25, dest) {
                            if r.from != r.to {
                                migrated.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                round += 1;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        });
        s.spawn(move || {
            while finished.load(Ordering::Acquire) < CLIENTS as u64 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            done.store(true, Ordering::Release);
        });
    });

    let moved = migrated.load(Ordering::Relaxed);
    assert!(moved > 0, "the migrator must land real handoffs");
    assert_eq!(
        dora.stats().migrations,
        moved,
        "engine migration counter tracks the migrator"
    );
    assert_eq!(
        retried.load(Ordering::Relaxed),
        0,
        "single-key TATP actions can never straddle a moved boundary"
    );
    dora.shutdown();
    conv.shutdown();

    assert_eq!(all_sorted(&dora_db, dt), all_sorted(&model_db, mt));
    assert_eq!(all_sorted(&conv_db, ct), all_sorted(&model_db, mt));
    for (db, t) in [(&*dora_db, dt), (&*conv_db, ct), (&model_db, mt)] {
        TatpWorkload::check_integrity(db, t).expect("TATP integrity after rebalances");
    }
}

/// Drives `per_client * CLIENTS` transactions from one overlapping key
/// range through `execute`, with a concurrent integrity auditor, and
/// checks invariants at quiescence. Returns (committed, aborted).
fn contended_run(
    db: &Database,
    t: TatpTables,
    subscribers: i64,
    per_client: usize,
    execute: impl Fn(&tatp::TatpOp) -> Result<(), String> + Sync,
    audit: impl Fn() -> Result<(), String> + Sync,
) -> (u64, u64) {
    let cf_initial = db.row_count(t.call_forwarding).expect("cf count") as i64;
    let cf_delta = AtomicI64::new(0);
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (execute, cf_delta) = (&execute, &cf_delta);
            let (committed, aborted) = (&committed, &aborted);
            s.spawn(move || {
                let mut mix = TatpMix::new(subscribers, 7_000 + client as u64);
                for _ in 0..per_client {
                    let op = mix.next_op();
                    match execute(&op) {
                        Ok(()) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                            cf_delta.fetch_add(op.cf_delta(), Ordering::Relaxed);
                        }
                        Err(reason) => {
                            aborted.fetch_add(1, Ordering::Relaxed);
                            assert!(
                                allowed_contended_abort(&reason),
                                "unexpected abort class under contention: {op:?} -> {reason}"
                            );
                        }
                    }
                }
            });
        }
        let (audit, done) = (&audit, &done);
        s.spawn(move || {
            let mut audits = 0u32;
            while !done.load(Ordering::Acquire) {
                if let Err(reason) = audit() {
                    // The audit may fall victim to contention like any
                    // transaction, but an orphan report is an engine bug.
                    assert!(
                        !reason.contains("no special_facility parent"),
                        "integrity audit found orphans mid-run: {reason}"
                    );
                    assert!(allowed_contended_abort(&reason), "audit abort: {reason}");
                }
                audits += 1;
                std::thread::yield_now();
            }
            assert!(audits > 0);
        });
        // Scope joins client threads after this closure returns; flip the
        // auditor's flag from a watcher thread once clients are counted
        // out.
        let (committed, aborted) = (&committed, &aborted);
        let expect = (per_client * CLIENTS) as u64;
        s.spawn(move || {
            while committed.load(Ordering::Relaxed) + aborted.load(Ordering::Relaxed) < expect {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            done.store(true, Ordering::Release);
        });
    });

    TatpWorkload::check_integrity(db, t).expect("TATP integrity at quiescence");
    assert_eq!(
        db.row_count(t.call_forwarding).expect("cf count") as i64,
        cf_initial + cf_delta.load(Ordering::Relaxed),
        "call-forwarding rows conserved under contention"
    );
    (
        committed.load(Ordering::Relaxed),
        aborted.load(Ordering::Relaxed),
    )
}

#[test]
fn oracle_invariants_under_contended_dora_execution() {
    let subscribers: i64 = 64; // small and hot: plenty of key overlap
    let per_client = (stream_total() / 10).max(1_000) / CLIENTS;
    let wl = TatpWorkload {
        subscribers,
        seed: 31,
    };
    let db = Arc::new(Database::default());
    let t = wl.load(&db);
    let engine = DoraEngine::new(
        db.clone(),
        wl.routing(t, WORKERS),
        DoraEngineConfig {
            workers: WORKERS,
            ..Default::default()
        },
    );
    let (committed, aborted) = contended_run(
        &db,
        t,
        subscribers,
        per_client,
        |op| match engine.execute(flow_of(t, op, None)) {
            TxnOutcome::Committed => Ok(()),
            TxnOutcome::Aborted { reason } => Err(reason),
        },
        || match engine.execute(integrity_audit_flow(t, subscribers - 1)) {
            TxnOutcome::Committed => Ok(()),
            TxnOutcome::Aborted { reason } => Err(reason),
        },
    );
    engine.shutdown();
    assert!(committed > 0 && aborted > 0, "{committed}/{aborted}");
}

#[test]
fn oracle_invariants_under_contended_conv_execution() {
    use dora_workloads::dora_engine_conv::TxnOutcome as ConvOutcome;
    let subscribers: i64 = 64;
    let per_client = (stream_total() / 10).max(1_000) / CLIENTS;
    let wl = TatpWorkload {
        subscribers,
        seed: 33,
    };
    let db = Arc::new(Database::default());
    let t = wl.load(&db);
    let engine = ConvEngine::new(
        db.clone(),
        ConvEngineConfig {
            workers: WORKERS,
            max_retries: 20,
        },
    );
    let (committed, aborted) = contended_run(
        &db,
        t,
        subscribers,
        per_client,
        |op| match engine.execute(request_of(t, op, None)) {
            ConvOutcome::Committed { .. } => Ok(()),
            ConvOutcome::Aborted { reason } => Err(reason),
        },
        || match engine.execute(integrity_audit_request(t, subscribers - 1)) {
            ConvOutcome::Committed { .. } => Ok(()),
            ConvOutcome::Aborted { reason } => Err(reason),
        },
    );
    engine.shutdown();
    assert!(committed > 0, "{committed}/{aborted}");
}
