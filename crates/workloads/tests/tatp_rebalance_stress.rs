//! Rebalance-under-traffic stress: eight clients hammer one overlapping
//! TATP key range while a migrator thread issues a range migration every
//! `MIGRATE_EVERY` committed transactions — ownership of the hot tables
//! keeps moving under full contention for the entire run. At quiescence
//! TATP referential integrity must hold and every abort must belong to a
//! known contention class (the two retryable migration classes included,
//! though single-key TATP actions should never hit them).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dora_workloads::dora_core::executor::{DoraEngine, DoraEngineConfig, TxnOutcome};
use dora_workloads::dora_storage::db::Database;
use dora_workloads::tatp::{flow_of, TatpMix, TatpWorkload, MISS};

const WORKERS: usize = 4;
const CLIENTS: usize = 8;
const SUBSCRIBERS: i64 = 256;
const MIGRATE_EVERY: u64 = 250;

fn allowed_abort(reason: &str) -> bool {
    reason.contains(MISS)
        || reason.contains("lock")
        || reason.contains("deadlock")
        || reason.contains("uncommitted")
        || reason.contains("timeout")
        || reason.contains("timed out")
        || reason.contains("range migration")
        || reason.contains("routing changed")
}

#[test]
fn rebalance_under_contended_tatp_traffic_keeps_integrity() {
    let total: u64 = std::env::var("TATP_STRESS_TOTAL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) {
            8_000
        } else {
            40_000
        });
    let per_client = total / CLIENTS as u64;
    let wl = TatpWorkload {
        subscribers: SUBSCRIBERS,
        seed: 73,
    };
    let db = Arc::new(Database::default());
    let t = wl.load(&db);
    let engine = DoraEngine::new(
        db.clone(),
        wl.routing(t, WORKERS),
        DoraEngineConfig {
            workers: WORKERS,
            ..Default::default()
        },
    );

    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let migrated = AtomicU64::new(0);

    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let engine = &engine;
            let (committed, aborted) = (&committed, &aborted);
            s.spawn(move || {
                // Zipf skew concentrates contention — and migrations —
                // on the same hot keys.
                let mut mix = TatpMix::with_skew(SUBSCRIBERS, 9_000 + client as u64, 0.8);
                for _ in 0..per_client {
                    let op = mix.next_op();
                    match engine.execute(flow_of(t, &op, None)) {
                        TxnOutcome::Committed => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        TxnOutcome::Aborted { reason } => {
                            aborted.fetch_add(1, Ordering::Relaxed);
                            assert!(
                                allowed_abort(&reason),
                                "unexpected abort under rebalancing: {op:?} -> {reason}"
                            );
                        }
                    }
                }
            });
        }
        // The migrator: one migration per MIGRATE_EVERY committed
        // transactions, rotating through 16-key blocks of all four
        // routed tables and all destinations. Blocks fragmented across
        // owners by earlier carves are skipped.
        let engine = &engine;
        let (committed_m, done_m, migrated) = (&committed, &done, &migrated);
        s.spawn(move || {
            let (committed, done, migrated) = (committed_m, done_m, migrated);
            let mut due: u64 = MIGRATE_EVERY;
            let mut turn = 0usize;
            while !done.load(Ordering::Acquire) {
                if committed.load(Ordering::Relaxed) < due {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    continue;
                }
                due += MIGRATE_EVERY;
                let tables = [
                    t.subscriber,
                    t.access_info,
                    t.special_facility,
                    t.call_forwarding,
                ];
                let table = tables[turn % tables.len()];
                let lo = ((turn / tables.len()) as i64 * 16) % SUBSCRIBERS;
                let dest = turn % WORKERS;
                if let Ok(r) = engine.migrate_range(table, lo, lo + 16, dest) {
                    if r.from != r.to {
                        migrated.fetch_add(1, Ordering::Relaxed);
                    }
                }
                turn += 1;
            }
        });
        let (committed, aborted, done) = (&committed, &aborted, &done);
        s.spawn(move || {
            let expect = per_client * CLIENTS as u64;
            while committed.load(Ordering::Relaxed) + aborted.load(Ordering::Relaxed) < expect {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            done.store(true, Ordering::Release);
        });
    });

    engine.shutdown();
    TatpWorkload::check_integrity(&db, t).expect("TATP integrity after rebalance stress");
    let (c, a, m) = (
        committed.load(Ordering::Relaxed),
        aborted.load(Ordering::Relaxed),
        migrated.load(Ordering::Relaxed),
    );
    assert!(c > total / 2, "most transactions must commit: {c}/{total}");
    assert!(
        m > 0,
        "the migrator must land real handoffs: {c} committed, {a} aborted"
    );
}
