//! TATP over the disk-backed WAL: load and traffic run against a
//! simulated file system, the machine "crashes", and a fresh database
//! recovers — table-identical to the pre-crash committed state, passing
//! the workload's referential-integrity audit, and serving validated
//! reads with zero retries. Extends the PR 4 in-memory recovery test to
//! the on-disk log, including a mid-stream fuzzy checkpoint.

use dora_workloads::dora_storage::db::Database;
use dora_workloads::dora_storage::io::SimFs;
use dora_workloads::dora_storage::segment::WalConfig;
use dora_workloads::dora_storage::types::{TableId, Value};
use dora_workloads::tatp::{self, TatpMix, TatpTables, TatpWorkload};

fn sorted_rows(db: &Database, t: TableId) -> Vec<Vec<Value>> {
    let mut rows = db.scan(t).expect("scan");
    rows.sort();
    rows
}

fn all_sorted(db: &Database, t: TatpTables) -> Vec<Vec<Vec<Value>>> {
    [
        t.subscriber,
        t.access_info,
        t.special_facility,
        t.call_forwarding,
    ]
    .iter()
    .map(|&table| sorted_rows(db, table))
    .collect()
}

#[test]
fn tatp_survives_crash_and_recovery_with_checkpoint() {
    let wl = TatpWorkload {
        subscribers: 64,
        seed: 7,
    };
    let fs = SimFs::new();
    let cfg = WalConfig::sim("/wal", fs.clone()).with_segment_bytes(64 * 1024);

    // Live database: WAL attached BEFORE load, so the load itself is
    // logged and replayed like any other traffic.
    let db = Database::default();
    db.recover_and_attach_wal(cfg.clone()).unwrap();
    let tables = wl.load(&db);

    let mut mix = TatpMix::new(wl.subscribers, 1234);
    for i in 0..400 {
        let op = mix.next_op();
        // Model application commits or fails atomically; failures
        // (TATP's expected misses) are part of the workload.
        let _ = tatp::apply_model(&db, tables, &op);
        if i == 200 {
            db.checkpoint().unwrap();
        }
    }
    let expected = all_sorted(&db, tables);
    TatpWorkload::check_integrity(&db, tables).expect("pre-crash integrity");

    fs.crash(0x7a7b);

    let recovered = Database::default();
    let rtables = wl.create_tables(&recovered);
    let report = recovered.recover_and_attach_wal(cfg).unwrap();
    assert!(
        report.checkpoint_lsn > 0 && report.snapshot_rows > 0,
        "recovery must have gone through the fuzzy checkpoint image: {report:?}"
    );

    assert_eq!(
        all_sorted(&recovered, rtables),
        expected,
        "recovered TATP tables differ from the pre-crash committed state"
    );
    TatpWorkload::check_integrity(&recovered, rtables).expect("post-crash integrity");
    assert_eq!(
        recovered.counters().validated_retries,
        0,
        "recovered database must serve validated reads without retries"
    );
}
