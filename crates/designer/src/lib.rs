//! # dora-designer
//!
//! Physical-design tools for DORA: choosing and maintaining the logical
//! partitioning that the executor's thread-to-data assignment depends on.
//!
//! **Planned role.** The paper's "supporting tools" are reproduced here:
//!
//! * **Routing-table designer** — derives an initial
//!   [`RoutingTable`](dora_core::routing::RoutingTable) from a schema and
//!   a workload description: pick each table's routing field, decide how
//!   many logical partitions each table needs, and emit
//!   [`RoutingRule`](dora_core::routing::RoutingRule)s aligned with the
//!   transactions' access patterns.
//! * **Alignment advisor** — consumes the
//!   [`AccessTrace`](dora_storage::trace::AccessTrace) both engines can
//!   record and reports which accesses were *not* partition-aligned
//!   (secondary actions), i.e. where a different routing field or an extra
//!   index would let DORA route by key.
//! * **Run-time load balancer** — watches per-partition utilization from
//!   the executor's stats snapshots and re-splits hot ranges /
//!   merges cold ones via
//!   [`DoraEngine::update_routing`](dora_core::executor::DoraEngine::update_routing)
//!   — cheap because partitions are purely logical (nothing moves on
//!   disk).
//!
//! Nothing is implemented yet — the crate currently only re-exports its
//! dependencies' entry points so downstream code can compile against one
//! name.

#![warn(missing_docs)]

pub use dora_core;
pub use dora_storage;
