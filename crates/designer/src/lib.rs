//! # dora-designer
//!
//! Physical-design tools for DORA: choosing and maintaining the logical
//! partitioning that the executor's thread-to-data assignment depends on.
//! The paper's "supporting tools" are reproduced as three pieces:
//!
//! * **Routing-table designer** — [`design_routing`] derives an initial
//!   [`RoutingTable`] from the catalog
//!   and a [`WorkloadProfile`]: each table routes on its first primary-key
//!   column, and the partition boundaries are placed at load quantiles so
//!   known-hot keys spread across partitions instead of clustering.
//! * **Alignment advisor** — [`advise`] consumes the
//!   [`AccessTrace`] both engines can
//!   record and reports, per table, how many accesses executed on a
//!   worker other than the routing owner of the key ("secondary", i.e.
//!   not partition-aligned) and the routing field that would align them.
//! * **Run-time load balancer** — [`LoadBalancer`] samples the executor's
//!   per-partition stats ([`DoraStatsSnapshot`]: actions executed, queue
//!   depth) plus its per-key load samples, computes an imbalance score,
//!   and corrects skew with bounded, quiesce-free
//!   [`DoraEngine::migrate_range`] calls — splitting the hot range at the
//!   load point that minimizes the predicted post-move maximum, with
//!   hysteresis so it never oscillates.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use dora_core::executor::{DoraEngine, DoraStatsSnapshot, MigrationReport};
use dora_core::routing::{RoutingRule, RoutingTable};
use dora_storage::schema::TableSchema;
use dora_storage::trace::{AccessEvent, AccessTrace};
use dora_storage::types::TableId;

pub use dora_core;
pub use dora_storage;

// ---------------------------------------------------------------------------
// Routing-table designer
// ---------------------------------------------------------------------------

/// Expected access distribution for one table.
#[derive(Debug, Clone)]
pub struct TableProfile {
    /// Table this profile describes.
    pub table: TableId,
    /// Smallest routing-key value (inclusive).
    pub key_lo: i64,
    /// Largest routing-key value (inclusive).
    pub key_hi: i64,
    /// Known-hot keys and the share of this table's accesses each one
    /// receives (shares in `[0, 1]`, summing to less than 1). The rest of
    /// the table's load is assumed uniform over `[key_lo, key_hi]`.
    pub hot_keys: Vec<(i64, f64)>,
}

/// Expected access distribution for a whole workload.
#[derive(Debug, Clone, Default)]
pub struct WorkloadProfile {
    /// Per-table profiles. Tables present in the catalog but absent here
    /// have an unknown key span, so they are left unrouted (their actions
    /// run secondary, and [`advise`] will flag them).
    pub tables: Vec<TableProfile>,
}

/// Derives an initial routing table: every profiled table routes on its
/// first primary-key column, with partition boundaries at the load
/// quantiles implied by the profile — a uniform profile yields equal-width
/// ranges; a skewed one narrows the ranges around hot keys so each
/// partition starts with roughly `1/partitions` of the expected load.
///
/// A hot key carrying more than `1/partitions` of the load cannot be
/// split; the designer isolates it in its own narrow range and leaves the
/// corresponding partitions' shares uneven (the run-time balancer owns
/// whatever error remains).
pub fn design_routing(
    catalog: &[(TableId, TableSchema)],
    profile: &WorkloadProfile,
    partitions: usize,
) -> RoutingTable {
    assert!(partitions > 0, "need at least one partition");
    let mut routing = RoutingTable::new();
    for (table, schema) in catalog {
        let Some(p) = profile.tables.iter().find(|p| p.table == *table) else {
            continue;
        };
        let field = schema.primary_key.first().copied().unwrap_or(0);
        let boundaries = quantile_boundaries(p, partitions);
        let owners = (0..=boundaries.len()).collect();
        routing.set_rule(RoutingRule {
            table: *table,
            field,
            boundaries,
            owners,
        });
    }
    routing
}

/// Boundary positions splitting `[key_lo, key_hi]` into up to `partitions`
/// intervals of roughly equal expected load (uniform density plus the
/// profile's point masses). Strictly increasing; fewer than
/// `partitions - 1` entries when a single key's mass swallows more than
/// one quantile.
fn quantile_boundaries(p: &TableProfile, partitions: usize) -> Vec<i64> {
    let span = (p.key_hi - p.key_lo + 1).max(1) as f64;
    let mut hot: Vec<(i64, f64)> = p
        .hot_keys
        .iter()
        .copied()
        .filter(|&(k, s)| k >= p.key_lo && k <= p.key_hi && s > 0.0)
        .collect();
    hot.sort_by_key(|&(k, _)| k);
    let hot_sum: f64 = hot.iter().map(|&(_, s)| s).sum();
    let density = (1.0 - hot_sum).max(0.0) / span;
    let mut boundaries = Vec::new();
    let mut cum = 0.0;
    let mut pos = p.key_lo;
    let mut hot = hot.into_iter().peekable();
    for i in 1..partitions {
        let target = i as f64 / partitions as f64;
        loop {
            if pos > p.key_hi {
                break;
            }
            match hot.peek().copied() {
                Some((hk, hs)) => {
                    let uniform_to_hot = (hk - pos) as f64 * density;
                    if cum + uniform_to_hot >= target {
                        let b = invert_uniform(pos, density, target - cum).min(hk);
                        cum += (b - pos) as f64 * density;
                        pos = b;
                        push_boundary(&mut boundaries, pos, p.key_hi);
                        break;
                    }
                    // Cross the hot key: its point mass plus its own
                    // uniform slot land at once.
                    cum += uniform_to_hot + hs + density;
                    pos = hk + 1;
                    hot.next();
                    if cum >= target {
                        push_boundary(&mut boundaries, pos, p.key_hi);
                        break;
                    }
                }
                None => {
                    let b = invert_uniform(pos, density, target - cum).min(p.key_hi);
                    cum += (b - pos) as f64 * density;
                    pos = b;
                    push_boundary(&mut boundaries, pos, p.key_hi);
                    break;
                }
            }
        }
    }
    boundaries
}

/// Smallest key `b > pos` such that the uniform mass of `[pos, b)` covers
/// `need`.
fn invert_uniform(pos: i64, density: f64, need: f64) -> i64 {
    if density <= 0.0 {
        return pos + 1;
    }
    pos + ((need / density).ceil() as i64).max(1)
}

/// Appends `b` if it keeps the boundary list strictly increasing and
/// inside the key span (duplicate quantiles collapse — a hot key heavier
/// than one quantile cannot be split further).
fn push_boundary(boundaries: &mut Vec<i64>, b: i64, key_hi: i64) {
    if b <= key_hi && boundaries.last().is_none_or(|&last| b > last) {
        boundaries.push(b);
    }
}

// ---------------------------------------------------------------------------
// Alignment advisor
// ---------------------------------------------------------------------------

/// Per-table alignment summary: how many traced accesses ran on a worker
/// other than the one the routing table assigns their key to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignmentEntry {
    /// Table the accesses touched.
    pub table: TableId,
    /// Total traced accesses to the table.
    pub total: u64,
    /// Accesses that executed on a non-owning worker (secondary).
    pub misaligned: u64,
    /// Whether the routing table has a rule for this table at all.
    pub routed: bool,
    /// The routing field that would align the misaligned accesses: the
    /// table's current routing field when routed (the trace keys *are*
    /// routing-key values), otherwise the first primary-key column.
    pub suggested_field: usize,
}

impl AlignmentEntry {
    /// Misaligned share of the table's accesses, `0.0` when untouched.
    pub fn misaligned_share(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misaligned as f64 / self.total as f64
        }
    }
}

/// The advisor's output: tables ordered by misaligned access count,
/// worst first.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentReport {
    /// Per-table summaries (only tables with at least one traced access).
    pub entries: Vec<AlignmentEntry>,
    /// Worker count the owner check folded partition ids into.
    pub workers: usize,
}

impl AlignmentReport {
    /// Entries with at least one misaligned access.
    pub fn offenders(&self) -> impl Iterator<Item = &AlignmentEntry> {
        self.entries.iter().filter(|e| e.misaligned > 0)
    }
}

impl fmt::Display for AlignmentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "alignment report ({} workers):", self.workers)?;
        if self.entries.is_empty() {
            return writeln!(f, "  (no traced accesses)");
        }
        for e in &self.entries {
            writeln!(
                f,
                "  table {}: {}/{} accesses misaligned ({:.1}%){} -> route on field {}",
                e.table,
                e.misaligned,
                e.total,
                100.0 * e.misaligned_share(),
                if e.routed { "" } else { " [unrouted]" },
                e.suggested_field,
            )?;
        }
        Ok(())
    }
}

/// Analyzes a recorded access trace against `routing`: an access is
/// **aligned** when the worker that performed it is the routing owner of
/// the key (folded modulo `workers`, as the executor folds logical
/// partitions onto threads), and **secondary** otherwise. Unrouted tables
/// count every access as secondary — routing them on the traced key
/// column (their first primary-key column) would align them.
pub fn advise(trace: &AccessTrace, routing: &RoutingTable, workers: usize) -> AlignmentReport {
    advise_events(&trace.snapshot(), routing, workers)
}

/// [`advise`] over an already-snapshotted event list.
pub fn advise_events(
    events: &[AccessEvent],
    routing: &RoutingTable,
    workers: usize,
) -> AlignmentReport {
    let workers = workers.max(1);
    let mut per_table: HashMap<TableId, AlignmentEntry> = HashMap::new();
    for e in events {
        let rule = routing.rule(e.table);
        let entry = per_table.entry(e.table).or_insert_with(|| AlignmentEntry {
            table: e.table,
            total: 0,
            misaligned: 0,
            routed: rule.is_some(),
            suggested_field: rule.map(|r| r.field).unwrap_or(0),
        });
        entry.total += 1;
        let aligned = rule.is_some_and(|r| r.owner_of(e.key) % workers == e.worker);
        if !aligned {
            entry.misaligned += 1;
        }
    }
    let mut entries: Vec<AlignmentEntry> = per_table.into_values().collect();
    entries.sort_by(|a, b| b.misaligned.cmp(&a.misaligned).then(a.table.cmp(&b.table)));
    AlignmentReport { entries, workers }
}

// ---------------------------------------------------------------------------
// Run-time load balancer
// ---------------------------------------------------------------------------

/// Tuning knobs for the [`LoadBalancer`].
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Sampling period of [`LoadBalancer::run`].
    pub interval: Duration,
    /// Imbalance score (max partition load / mean) below which a window
    /// triggers no correction — the hysteresis high watermark.
    pub high_watermark: f64,
    /// Minimum time between issued migrations (additional hysteresis; the
    /// improvement guard below already prevents oscillation).
    pub cooldown: Duration,
    /// Windows with fewer weighted actions than this are ignored — too
    /// little signal to split on.
    pub min_window_actions: u64,
    /// A split is only issued when the predicted post-move maximum load is
    /// below `improvement * current_max` — moving load that merely swaps
    /// the hot spot is refused.
    pub improvement: f64,
    /// `coalesce_routing` is invoked for a table once its rule fragments
    /// into more ranges than this.
    pub max_ranges_per_table: usize,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            interval: Duration::from_millis(50),
            high_watermark: 1.2,
            cooldown: Duration::ZERO,
            min_window_actions: 200,
            improvement: 0.97,
            max_ranges_per_table: 64,
        }
    }
}

/// What the balancer did over its lifetime.
#[derive(Debug, Clone, Default)]
pub struct BalancerReport {
    /// Migrations issued (each one bounded: a single contiguous range).
    pub migrations: u64,
    /// Handoff duration of each issued migration — the "pause" a range's
    /// own traffic could observe; unaffected ranges never pause.
    pub pauses: Vec<Duration>,
    /// Imbalance score of the most recent complete window.
    pub last_imbalance: f64,
    /// Parked actions aborted because their key set straddled a moved
    /// range boundary (retryable aborts, summed across all migrations).
    pub aborted_straddlers: u64,
}

/// Runtime load balancer: call [`LoadBalancer::tick`] periodically (or
/// hand a thread to [`LoadBalancer::run`]). Each tick window-diffs the
/// engine's stats; when the weighted per-partition load (actions executed
/// plus queued backlog) is imbalanced past the watermark, it splits the
/// hottest sampled range of the hottest partition at the load point that
/// minimizes the predicted post-move maximum and migrates the piece to
/// the coldest partition — quiesce-free, bounded, and refused entirely
/// when no split would actually improve the balance.
#[derive(Debug, Default)]
pub struct LoadBalancer {
    cfg: BalancerConfig,
    prev_executed: Option<Vec<u64>>,
    prev_keys: HashMap<(TableId, i64), u64>,
    last_move: Option<Instant>,
    report: BalancerReport,
}

impl LoadBalancer {
    /// A balancer with the given tuning.
    pub fn new(cfg: BalancerConfig) -> Self {
        LoadBalancer {
            cfg,
            ..Default::default()
        }
    }

    /// What the balancer has done so far.
    pub fn report(&self) -> &BalancerReport {
        &self.report
    }

    /// Ticks every `interval` until `stop` is set, then returns the
    /// accumulated report. Run this on its own thread next to the
    /// workload.
    pub fn run(mut self, engine: &DoraEngine, stop: &AtomicBool) -> BalancerReport {
        while !stop.load(Ordering::Relaxed) {
            std::thread::sleep(self.cfg.interval);
            self.tick(engine);
        }
        self.report
    }

    /// One balancing pass; returns the migration it issued, if any. The
    /// first tick only opens the sampling window (and enables the
    /// engine's key-load sampling).
    pub fn tick(&mut self, engine: &DoraEngine) -> Option<MigrationReport> {
        engine.set_key_sampling(true);
        let stats = engine.stats();
        let key_window = self.diff_keys(engine.key_load_snapshot());
        let executed: Vec<u64> = stats.workers.iter().map(|w| w.executed).collect();
        let prev = self.prev_executed.replace(executed.clone())?;
        let load = window_load(&stats, &executed, &prev);
        let total: f64 = load.iter().sum();
        if total < self.cfg.min_window_actions as f64 {
            return None;
        }
        let mean = total / load.len() as f64;
        let max = load.iter().copied().fold(0.0f64, f64::max);
        self.report.last_imbalance = max / mean;
        if max / mean < self.cfg.high_watermark {
            return None;
        }
        if self
            .last_move
            .is_some_and(|t| t.elapsed() < self.cfg.cooldown)
        {
            return None;
        }
        let hot = argmax(&load);
        let cold = argmin(&load);
        if hot == cold {
            return None;
        }
        let routing = engine.routing();
        let workers = engine.worker_count();
        let plan = plan_split(
            &key_window,
            &routing,
            workers,
            &load,
            hot,
            cold,
            self.cfg.improvement,
        )?;
        match engine.migrate_range(plan.table, plan.lo, plan.hi, cold) {
            Ok(r) => {
                self.report.migrations += 1;
                self.report.pauses.push(r.duration);
                self.report.aborted_straddlers += r.aborted_straddlers as u64;
                self.last_move = Some(Instant::now());
                let ranges = engine
                    .routing()
                    .rule(plan.table)
                    .map_or(0, |rule| rule.owners.len());
                if ranges > self.cfg.max_ranges_per_table {
                    engine.coalesce_routing(plan.table);
                }
                Some(r)
            }
            // A lost race (concurrent re-route, shutdown): skip this tick.
            Err(_) => None,
        }
    }

    /// Window-diffs the cumulative key-load snapshot, keeping the new
    /// snapshot as the next window's base.
    fn diff_keys(&mut self, now: HashMap<(TableId, i64), u64>) -> HashMap<(TableId, i64), u64> {
        let mut window = HashMap::with_capacity(now.len());
        for (&k, &v) in &now {
            let before = self.prev_keys.get(&k).copied().unwrap_or(0);
            if v > before {
                window.insert(k, v - before);
            }
        }
        self.prev_keys = now;
        window
    }
}

/// Weighted per-partition load for one window: actions executed during
/// the window plus the mailbox backlog at its end (a saturated-but-starved
/// partition shows up in queue depth before it shows up in throughput).
fn window_load(stats: &DoraStatsSnapshot, executed: &[u64], prev: &[u64]) -> Vec<f64> {
    executed
        .iter()
        .zip(prev)
        .zip(&stats.workers)
        .map(|((now, before), w)| (now.saturating_sub(*before) + w.queue_depth) as f64)
        .collect()
}

struct SplitPlan {
    table: TableId,
    lo: i64,
    hi: i64,
}

/// Picks the migration that best evens out `load`: among the hot
/// partition's sampled keys, take its hottest routing range, and split it
/// at the prefix whose predicted post-move maximum load is smallest. The
/// plan is dropped unless that maximum beats `improvement * current_max`
/// — the hysteresis that stops a heavy single key from ping-ponging.
fn plan_split(
    key_window: &HashMap<(TableId, i64), u64>,
    routing: &RoutingTable,
    workers: usize,
    load: &[f64],
    hot: usize,
    cold: usize,
    improvement: f64,
) -> Option<SplitPlan> {
    let workers = workers.max(1);
    // The hot partition's sampled keys, grouped by routing range.
    let mut per_range: HashMap<(TableId, usize), Vec<(i64, f64)>> = HashMap::new();
    for (&(table, key), &n) in key_window {
        let Some(rule) = routing.rule(table) else {
            continue;
        };
        if rule.owner_of(key) % workers == hot {
            per_range
                .entry((table, rule.range_of(key)))
                .or_default()
                .push((key, n as f64));
        }
    }
    let ((table, range_idx), mut keys) = per_range.into_iter().max_by(|a, b| {
        let la: f64 = a.1.iter().map(|&(_, l)| l).sum();
        let lb: f64 = b.1.iter().map(|&(_, l)| l).sum();
        la.total_cmp(&lb)
    })?;
    keys.sort_by_key(|&(k, _)| k);
    // Scale sampled loads to the window's weighted units: sampling counts
    // actions only, while `load` also includes queue backlog.
    let sampled: f64 = keys.iter().map(|&(_, l)| l).sum();
    if sampled <= 0.0 {
        return None;
    }
    let scale = load[hot] / sampled;
    let current_max = load.iter().copied().fold(0.0f64, f64::max);
    let others_max = load
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != hot && i != cold)
        .map(|(_, &l)| l)
        .fold(0.0f64, f64::max);
    let mut best: Option<(i64, f64)> = None;
    let mut cum = 0.0;
    for &(key, l) in &keys {
        cum += l * scale;
        let post = (load[hot] - cum).max(load[cold] + cum).max(others_max);
        if best.is_none_or(|(_, b)| post < b) {
            best = Some((key + 1, post));
        }
    }
    let (hi, post) = best?;
    if post >= improvement * current_max {
        return None;
    }
    let rule = routing.rule(table)?;
    // Lower bound of the split: the range's start boundary, or the first
    // sampled key when the range is unbounded below (keys below it carry
    // no sampled load and may as well stay put).
    let lo = if range_idx == 0 {
        keys.first()?.0
    } else {
        rule.boundaries[range_idx - 1]
    };
    (lo < hi).then_some(SplitPlan { table, lo, hi })
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn argmin(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_core::action::{ActionSpec, FlowGraph};
    use dora_core::executor::{DoraEngineConfig, DORA_POLICY};
    use dora_storage::db::Database;
    use dora_storage::error::StorageError;
    use dora_storage::schema::ColumnDef;
    use dora_storage::types::{DataType, Value};
    use std::sync::Arc;

    fn schema() -> TableSchema {
        TableSchema::new(
            "counters",
            vec![
                ColumnDef::new("id", DataType::BigInt),
                ColumnDef::new("value", DataType::BigInt),
            ],
            vec![0],
        )
    }

    #[test]
    fn design_routing_uniform_profile_cuts_equal_widths() {
        let t: TableId = 1;
        let routing = design_routing(
            &[(t, schema())],
            &WorkloadProfile {
                tables: vec![TableProfile {
                    table: t,
                    key_lo: 0,
                    key_hi: 99,
                    hot_keys: vec![],
                }],
            },
            4,
        );
        let rule = routing.rule(t).unwrap();
        assert_eq!(rule.field, 0);
        assert_eq!(rule.boundaries, vec![25, 50, 75]);
        assert_eq!(rule.owners, vec![0, 1, 2, 3]);
    }

    #[test]
    fn design_routing_isolates_a_dominant_hot_key() {
        let t: TableId = 1;
        let routing = design_routing(
            &[(t, schema())],
            &WorkloadProfile {
                tables: vec![TableProfile {
                    table: t,
                    key_lo: 0,
                    key_hi: 99,
                    hot_keys: vec![(0, 0.5)],
                }],
            },
            2,
        );
        let rule = routing.rule(t).unwrap();
        // Key 0 carries half the load: the first partition gets exactly
        // that key, the second everything else.
        assert_eq!(rule.boundaries, vec![1]);
        assert_eq!(rule.owner_of(0), 0);
        assert_eq!(rule.owner_of(50), 1);
    }

    #[test]
    fn design_routing_skips_unprofiled_tables() {
        let routing = design_routing(&[(7, schema())], &WorkloadProfile::default(), 4);
        assert!(routing.rule(7).is_none());
    }

    #[test]
    fn advisor_flags_unrouted_and_misrouted_tables() {
        let routed: TableId = 1;
        let unrouted: TableId = 2;
        let mut routing = RoutingTable::new();
        routing.set_rule(RoutingRule::uniform(routed, 0, 0, 99, 4, 4));
        // Aligned accesses: worker == owner of the key.
        let mut events = vec![];
        for key in [0, 30, 60, 90] {
            events.push(AccessEvent {
                worker: routing.owner_of(routed, key) % 4,
                table: routed,
                key,
                write: true,
            });
        }
        // One misaligned access to the routed table, three to the
        // unrouted one (every unrouted access is secondary).
        events.push(AccessEvent {
            worker: (routing.owner_of(routed, 10) + 1) % 4,
            table: routed,
            key: 10,
            write: false,
        });
        for key in [5, 6, 7] {
            events.push(AccessEvent {
                worker: 0,
                table: unrouted,
                key,
                write: false,
            });
        }
        let report = advise_events(&events, &routing, 4);
        assert_eq!(report.entries.len(), 2);
        // Worst offender first.
        assert_eq!(report.entries[0].table, unrouted);
        assert_eq!(report.entries[0].misaligned, 3);
        assert!(!report.entries[0].routed);
        assert_eq!(report.entries[0].suggested_field, 0);
        assert_eq!(report.entries[1].table, routed);
        assert_eq!(report.entries[1].total, 5);
        assert_eq!(report.entries[1].misaligned, 1);
        assert!(report.entries[1].routed);
        assert_eq!(report.offenders().count(), 2);
        let shown = report.to_string();
        assert!(shown.contains("unrouted"), "{shown}");
    }

    fn engine_with_rows(rows: i64, workers: usize) -> (Arc<Database>, TableId, DoraEngine) {
        let db = Arc::new(Database::default());
        let t = db.create_table(schema()).unwrap();
        let txn = db.begin();
        for i in 0..rows {
            db.insert(
                txn,
                t,
                vec![Value::BigInt(i), Value::BigInt(0)],
                DORA_POLICY,
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
        let mut routing = RoutingTable::new();
        routing.set_rule(RoutingRule::uniform(
            t,
            0,
            0,
            rows.max(1) - 1,
            workers,
            workers,
        ));
        let e = DoraEngine::new(
            db.clone(),
            routing,
            DoraEngineConfig {
                workers,
                ..Default::default()
            },
        );
        (db, t, e)
    }

    fn increment(t: TableId, id: i64) -> FlowGraph {
        FlowGraph::new(
            "Increment",
            vec![ActionSpec::write(t, id, move |db, txn, _ctx| {
                let row = db
                    .get(txn, t, &[Value::BigInt(id)], DORA_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                let v = row[1].as_i64().unwrap();
                db.update(
                    txn,
                    t,
                    &[Value::BigInt(id)],
                    &[(1, Value::BigInt(v + 1))],
                    DORA_POLICY,
                )?;
                Ok(vec![])
            })],
        )
    }

    #[test]
    fn balancer_splits_a_hot_range_toward_the_cold_partition() {
        let (_db, t, e) = engine_with_rows(16, 2);
        let mut lb = LoadBalancer::new(BalancerConfig {
            high_watermark: 1.2,
            min_window_actions: 10,
            ..Default::default()
        });
        // First tick opens the window and enables key sampling.
        assert!(lb.tick(&e).is_none());
        // All load lands on keys 0 and 1 — both on partition 0.
        for _ in 0..100 {
            assert!(e.execute(increment(t, 0)).is_committed());
            assert!(e.execute(increment(t, 1)).is_committed());
        }
        let moved = lb.tick(&e).expect("a skewed window must trigger a split");
        assert_eq!(moved.to, 1);
        assert_eq!(moved.table, t);
        // The split point separates the two hot keys: one stays, one
        // moves — the even split is the post-move minimum.
        let routing = e.routing();
        assert_ne!(
            routing.owner_of(t, 0) % 2,
            routing.owner_of(t, 1) % 2,
            "split should separate the two equally-hot keys: {routing:?}"
        );
        assert_eq!(lb.report().migrations, 1);
        assert_eq!(lb.report().pauses.len(), 1);
        assert!(lb.report().last_imbalance > 1.9);
        // Traffic keeps committing on both sides of the split.
        assert!(e.execute(increment(t, 0)).is_committed());
        assert!(e.execute(increment(t, 1)).is_committed());
        e.shutdown();
    }

    #[test]
    fn balancer_refuses_balanced_and_thin_windows() {
        let (_db, t, e) = engine_with_rows(16, 2);
        let mut lb = LoadBalancer::new(BalancerConfig {
            min_window_actions: 10,
            ..Default::default()
        });
        assert!(lb.tick(&e).is_none());
        // Thin window: below min_window_actions.
        assert!(e.execute(increment(t, 0)).is_committed());
        assert!(lb.tick(&e).is_none());
        // Balanced window: equal load on both partitions.
        for _ in 0..50 {
            assert!(e.execute(increment(t, 1)).is_committed());
            assert!(e.execute(increment(t, 9)).is_committed());
        }
        assert!(lb.tick(&e).is_none());
        assert!(lb.report().last_imbalance < 1.2);
        assert_eq!(lb.report().migrations, 0);
        e.shutdown();
    }
}
