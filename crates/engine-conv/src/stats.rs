//! Execution-engine statistics shared by the monitoring panel and the
//! benchmark harness.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Per-worker counters (one instance per worker thread; written only by its
/// owner, read by the monitor).
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Transactions (or actions) executed by this worker.
    pub executed: AtomicU64,
    /// Nanoseconds spent executing work (as opposed to waiting for input).
    pub busy_ns: AtomicU64,
}

/// Snapshot of one worker's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStatsSnapshot {
    /// Transactions (or actions) executed by this worker.
    pub executed: u64,
    /// Nanoseconds spent executing work.
    pub busy_ns: u64,
}

impl WorkerStats {
    /// Snapshot of the counters.
    pub fn snapshot(&self) -> WorkerStatsSnapshot {
        WorkerStatsSnapshot {
            executed: self.executed.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}

/// Engine-wide counters.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Transactions committed.
    pub committed: AtomicU64,
    /// Transactions aborted (after exhausting retries or non-retryable).
    pub aborted: AtomicU64,
    /// Retries caused by deadlocks or lock timeouts.
    pub retries: AtomicU64,
    /// Commits failed by a log I/O error (ENOSPC on a segment, failed
    /// fsync): the transaction aborts visibly instead of being
    /// acknowledged without durability.
    pub log_io_errors: AtomicU64,
}

/// Snapshot of engine-wide counters plus per-worker breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStatsSnapshot {
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Deadlock/timeout retries.
    pub retries: u64,
    /// Commits failed by a log I/O error (see [`EngineStats::log_io_errors`]).
    pub log_io_errors: u64,
    /// Per-worker counters.
    pub workers: Vec<WorkerStatsSnapshot>,
}

impl EngineStatsSnapshot {
    /// Utilization per worker over a wall-clock window of `window_ns`:
    /// busy time divided by the window, clamped to `[0, 1]`.
    pub fn utilization(&self, window_ns: u64) -> Vec<f64> {
        self.workers
            .iter()
            .map(|w| {
                if window_ns == 0 {
                    0.0
                } else {
                    (w.busy_ns as f64 / window_ns as f64).min(1.0)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_copy_counters() {
        let w = WorkerStats::default();
        w.executed.store(5, Ordering::Relaxed);
        w.busy_ns.store(100, Ordering::Relaxed);
        assert_eq!(
            w.snapshot(),
            WorkerStatsSnapshot {
                executed: 5,
                busy_ns: 100
            }
        );
    }

    #[test]
    fn utilization_is_clamped() {
        let snap = EngineStatsSnapshot {
            committed: 0,
            aborted: 0,
            retries: 0,
            log_io_errors: 0,
            workers: vec![
                WorkerStatsSnapshot {
                    executed: 1,
                    busy_ns: 50,
                },
                WorkerStatsSnapshot {
                    executed: 1,
                    busy_ns: 500,
                },
            ],
        };
        let u = snap.utilization(100);
        assert!((u[0] - 0.5).abs() < 1e-9);
        assert!((u[1] - 1.0).abs() < 1e-9);
        assert_eq!(snap.utilization(0), vec![0.0, 0.0]);
    }
}
