//! The conventional thread-to-transaction execution engine.
//!
//! This is the baseline the paper argues against: each incoming transaction
//! is assigned to a worker thread, and that thread touches whatever data the
//! transaction dictates, acquiring logical locks through the *centralized*
//! lock manager for every access. Under load this concentrates contention
//! inside the lock manager's critical sections and caps scalability.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use dora_storage::db::{Database, LockingPolicy};
use dora_storage::error::{StorageError, StorageResult};
use dora_storage::trace::{AccessTrace, WorkerCtx};
use dora_storage::types::TxnId;

use crate::stats::{EngineStats, EngineStatsSnapshot, WorkerStats};

/// The locking policy the conventional engine passes to every storage
/// operation.
pub const CONV_POLICY: LockingPolicy = LockingPolicy::Centralized;

/// Transaction logic: re-runnable (for deadlock retries) body executed by a
/// worker thread within a storage transaction.
pub type TxnBody = Box<dyn Fn(&Database, TxnId, &WorkerCtx) -> StorageResult<()> + Send>;

/// A transaction request submitted by a client.
pub struct TxnRequest {
    /// Human-readable transaction name (e.g. `"GetSubscriberData"`).
    pub name: &'static str,
    /// The transaction body.
    pub body: TxnBody,
}

impl TxnRequest {
    /// Creates a request from a name and body closure.
    pub fn new(
        name: &'static str,
        body: impl Fn(&Database, TxnId, &WorkerCtx) -> StorageResult<()> + Send + 'static,
    ) -> Self {
        TxnRequest {
            name,
            body: Box::new(body),
        }
    }
}

/// Final status of a submitted transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOutcome {
    /// The transaction committed (possibly after `retries` deadlock/timeout
    /// retries).
    Committed {
        /// Number of retries that were needed.
        retries: u32,
    },
    /// The transaction aborted and was not retried further.
    Aborted {
        /// Why the transaction aborted.
        reason: String,
    },
}

impl TxnOutcome {
    /// True when the transaction committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed { .. })
    }
}

/// Configuration of the conventional engine.
#[derive(Debug, Clone)]
pub struct ConvEngineConfig {
    /// Number of worker threads (the paper's "hardware contexts given to the
    /// system").
    pub workers: usize,
    /// Maximum automatic retries after deadlock/lock-timeout aborts.
    pub max_retries: u32,
}

impl Default for ConvEngineConfig {
    fn default() -> Self {
        ConvEngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_retries: 10,
        }
    }
}

struct Job {
    request: TxnRequest,
    reply: Sender<TxnOutcome>,
}

/// The conventional (thread-to-transaction) execution engine.
pub struct ConvEngine {
    db: Arc<Database>,
    sender: Option<Sender<Job>>,
    receiver: Receiver<Job>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<EngineStats>,
    worker_stats: Arc<Vec<WorkerStats>>,
    trace: Arc<AccessTrace>,
    config: ConvEngineConfig,
}

impl ConvEngine {
    /// Creates the engine and spawns its worker pool.
    pub fn new(db: Arc<Database>, config: ConvEngineConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        let (sender, receiver) = unbounded::<Job>();
        let stats = Arc::new(EngineStats::default());
        let worker_stats = Arc::new(
            (0..config.workers)
                .map(|_| WorkerStats::default())
                .collect::<Vec<_>>(),
        );
        let trace = Arc::new(AccessTrace::new());
        let mut engine = ConvEngine {
            db,
            sender: Some(sender),
            receiver,
            workers: Vec::new(),
            stats,
            worker_stats,
            trace,
            config,
        };
        engine.spawn_workers();
        engine
    }

    fn spawn_workers(&mut self) {
        for worker_id in 0..self.config.workers {
            let rx = self.receiver.clone();
            let db = self.db.clone();
            let stats = self.stats.clone();
            let worker_stats = self.worker_stats.clone();
            let trace = self.trace.clone();
            let max_retries = self.config.max_retries;
            let handle = std::thread::Builder::new()
                .name(format!("conv-worker-{worker_id}"))
                .spawn(move || {
                    let ctx = WorkerCtx::new(worker_id, trace);
                    while let Ok(job) = rx.recv() {
                        let start = Instant::now();
                        let outcome = Self::run_one(&db, &job.request, &ctx, max_retries, &stats);
                        let elapsed = start.elapsed().as_nanos() as u64;
                        let ws = &worker_stats[worker_id];
                        ws.executed.fetch_add(1, Ordering::Relaxed);
                        ws.busy_ns.fetch_add(elapsed, Ordering::Relaxed);
                        // The submitting client may have gone away; ignore.
                        let _ = job.reply.send(outcome);
                    }
                })
                .expect("spawn conventional worker");
            self.workers.push(handle);
        }
    }

    fn run_one(
        db: &Database,
        request: &TxnRequest,
        ctx: &WorkerCtx,
        max_retries: u32,
        stats: &EngineStats,
    ) -> TxnOutcome {
        let mut retries = 0u32;
        loop {
            let txn = db.begin();
            match (request.body)(db, txn, ctx) {
                Ok(()) => match db.commit(txn) {
                    Ok(()) => {
                        stats.committed.fetch_add(1, Ordering::Relaxed);
                        return TxnOutcome::Committed { retries };
                    }
                    Err(e) => {
                        if matches!(e, StorageError::LogIo(_) | StorageError::LogPoisoned(_)) {
                            stats.log_io_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        let _ = db.abort(txn);
                        stats.aborted.fetch_add(1, Ordering::Relaxed);
                        return TxnOutcome::Aborted {
                            reason: format!("commit failed: {e}"),
                        };
                    }
                },
                Err(e) if e.is_retryable() && retries < max_retries => {
                    let _ = db.abort(txn);
                    retries += 1;
                    stats.retries.fetch_add(1, Ordering::Relaxed);
                    // Brief backoff keeps deadlock-prone mixes livelock-free.
                    std::thread::yield_now();
                }
                Err(e) => {
                    let _ = db.abort(txn);
                    stats.aborted.fetch_add(1, Ordering::Relaxed);
                    return TxnOutcome::Aborted {
                        reason: e.to_string(),
                    };
                }
            }
        }
    }

    /// The underlying database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The engine's access trace (disabled unless enabled by the caller).
    pub fn trace(&self) -> &Arc<AccessTrace> {
        &self.trace
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.config.workers
    }

    /// Number of requests waiting in the shared input queue.
    pub fn queue_len(&self) -> usize {
        self.receiver.len()
    }

    /// Submits a transaction; the returned channel yields its outcome.
    pub fn submit(&self, request: TxnRequest) -> Receiver<TxnOutcome> {
        let (reply_tx, reply_rx) = bounded(1);
        let job = Job {
            request,
            reply: reply_tx,
        };
        self.sender
            .as_ref()
            .expect("engine not shut down")
            .send(job)
            .expect("worker pool alive");
        reply_rx
    }

    /// Submits a transaction and blocks until it finishes.
    pub fn execute(&self, request: TxnRequest) -> TxnOutcome {
        self.submit(request)
            .recv()
            .expect("worker pool delivers an outcome")
    }

    /// Engine counters plus per-worker breakdown.
    pub fn stats(&self) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            committed: self.stats.committed.load(Ordering::Relaxed),
            aborted: self.stats.aborted.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            log_io_errors: self.stats.log_io_errors.load(Ordering::Relaxed),
            workers: self.worker_stats.iter().map(|w| w.snapshot()).collect(),
        }
    }

    /// Stops accepting work and joins all workers (in-flight work finishes).
    pub fn shutdown(mut self) {
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ConvEngine {
    fn drop(&mut self) {
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_storage::error::StorageError;
    use dora_storage::schema::{ColumnDef, TableSchema};
    use dora_storage::types::{DataType, Value};

    fn db_with_counter_table() -> (Arc<Database>, u32) {
        let db = Arc::new(Database::default());
        let t = db
            .create_table(TableSchema::new(
                "counters",
                vec![
                    ColumnDef::new("id", DataType::BigInt),
                    ColumnDef::new("value", DataType::BigInt),
                ],
                vec![0],
            ))
            .unwrap();
        let txn = db.begin();
        for i in 0..16 {
            db.insert(
                txn,
                t,
                vec![Value::BigInt(i), Value::BigInt(0)],
                LockingPolicy::Centralized,
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
        (db, t)
    }

    fn increment_request(t: u32, id: i64) -> TxnRequest {
        TxnRequest::new("Increment", move |db, txn, ctx| {
            ctx.record(t, id, true);
            let row = db
                .get(txn, t, &[Value::BigInt(id)], CONV_POLICY)?
                .ok_or(StorageError::NotFound)?;
            let v = row[1].as_i64().unwrap();
            db.update(
                txn,
                t,
                &[Value::BigInt(id)],
                &[(1, Value::BigInt(v + 1))],
                CONV_POLICY,
            )?;
            Ok(())
        })
    }

    #[test]
    fn executes_and_commits_transactions() {
        let (db, t) = db_with_counter_table();
        let engine = ConvEngine::new(
            db.clone(),
            ConvEngineConfig {
                workers: 2,
                max_retries: 5,
            },
        );
        for i in 0..10 {
            let outcome = engine.execute(increment_request(t, i % 4));
            assert!(outcome.is_committed(), "{outcome:?}");
        }
        let stats = engine.stats();
        assert_eq!(stats.committed, 10);
        assert_eq!(stats.aborted, 0);
        assert_eq!(stats.workers.len(), 2);
        assert_eq!(stats.workers.iter().map(|w| w.executed).sum::<u64>(), 10);
        engine.shutdown();
    }

    #[test]
    fn concurrent_increments_are_serializable() {
        let (db, t) = db_with_counter_table();
        let engine = Arc::new(ConvEngine::new(
            db.clone(),
            ConvEngineConfig {
                workers: 4,
                max_retries: 50,
            },
        ));
        // 4 clients, each incrementing the same hot row 25 times.
        let mut clients = Vec::new();
        for _ in 0..4 {
            let engine = engine.clone();
            clients.push(std::thread::spawn(move || {
                let mut committed = 0;
                for _ in 0..25 {
                    if engine.execute(increment_request(t, 0)).is_committed() {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        let committed: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        let txn = db.begin();
        let row = db
            .get(txn, t, &[Value::BigInt(0)], LockingPolicy::Bypass)
            .unwrap()
            .unwrap();
        db.commit(txn).unwrap();
        assert_eq!(row[1].as_i64().unwrap(), committed as i64);
        assert_eq!(committed, 100, "all increments should eventually commit");
    }

    #[test]
    fn read_only_transactions_commit_without_touching_the_log() {
        let (db, t) = db_with_counter_table();
        let engine = ConvEngine::new(
            db.clone(),
            ConvEngineConfig {
                workers: 2,
                max_retries: 5,
            },
        );
        let before = db.log_stats();
        for i in 0..8 {
            let outcome = engine.execute(TxnRequest::new("ReadOnly", move |db, txn, _| {
                db.get(txn, t, &[Value::BigInt(i)], CONV_POLICY)?
                    .ok_or(StorageError::NotFound)?;
                Ok(())
            }));
            assert!(outcome.is_committed(), "{outcome:?}");
        }
        let after = db.log_stats();
        // Read-only fast path on the conventional engine too: no records
        // appended, no group commit forced.
        assert_eq!(after.appended, before.appended);
        assert_eq!(after.forces, before.forces);
        // A writing transaction still logs (lazy Begin + Update + Commit)
        // and forces once.
        assert!(engine.execute(increment_request(t, 0)).is_committed());
        let wrote = db.log_stats();
        assert_eq!(wrote.appended, before.appended + 3);
        assert_eq!(wrote.forces, before.forces + 1);
    }

    #[test]
    fn non_retryable_failure_aborts() {
        let (db, _t) = db_with_counter_table();
        let engine = ConvEngine::new(
            db,
            ConvEngineConfig {
                workers: 1,
                max_retries: 3,
            },
        );
        let outcome = engine.execute(TxnRequest::new("AlwaysFails", |_db, _txn, _ctx| {
            Err(StorageError::Aborted("business rule".into()))
        }));
        assert!(matches!(outcome, TxnOutcome::Aborted { .. }));
        assert_eq!(engine.stats().aborted, 1);
        assert_eq!(engine.stats().retries, 0);
    }

    #[test]
    fn access_trace_attributes_to_workers() {
        let (db, t) = db_with_counter_table();
        let engine = ConvEngine::new(
            db,
            ConvEngineConfig {
                workers: 3,
                max_retries: 3,
            },
        );
        engine.trace().set_enabled(true);
        let pending: Vec<_> = (0..30)
            .map(|i| engine.submit(increment_request(t, i % 16)))
            .collect();
        for p in pending {
            assert!(p.recv().unwrap().is_committed());
        }
        let events = engine.trace().snapshot();
        assert_eq!(events.len(), 30);
        assert!(events.iter().all(|e| e.worker < 3));
    }

    #[test]
    fn validated_reads_retry_until_the_writer_commits_never_serving_dirty_data() {
        // The conventional engine routes lock-free reads through the same
        // VersionedRead API as DORA's secondary actions: an uncommitted
        // record makes the body fail with the retryable ReadUncommitted
        // error, and the engine's retry loop plays the role of DORA's
        // park/re-run. The dirty value must never surface.
        let (db, t) = db_with_counter_table();
        let writer = db.begin();
        db.update(
            writer,
            t,
            &[Value::BigInt(0)],
            &[(1, Value::BigInt(41))],
            LockingPolicy::Centralized,
        )
        .unwrap();

        let engine = ConvEngine::new(
            db.clone(),
            ConvEngineConfig {
                workers: 1,
                max_retries: u32::MAX,
            },
        );
        let pending = engine.submit(TxnRequest::new("Audit", move |db, txn, _| {
            let row = db
                .read_validated(txn, t, &[Value::BigInt(0)], LockingPolicy::Bypass)?
                .ok_or(StorageError::NotFound)?;
            // Reachable only after the writer committed: the validated
            // read rejects the in-flight image instead of returning it.
            assert_eq!(row[1].as_i64(), Some(41), "dirty or stale value surfaced");
            Ok(())
        }));
        // Let the audit bounce off the uncommitted write at least once.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while engine.stats().retries == 0 {
            assert!(std::time::Instant::now() < deadline, "audit never retried");
            std::thread::yield_now();
        }
        db.commit(writer).unwrap();
        assert!(pending.recv().unwrap().is_committed());
        assert!(engine.stats().retries > 0);
        assert!(db.counters().validated_retries > 0);
    }

    #[test]
    fn lock_manager_critical_sections_grow_with_work() {
        let (db, t) = db_with_counter_table();
        let before = db.lock_stats().critical_sections;
        let engine = ConvEngine::new(
            db.clone(),
            ConvEngineConfig {
                workers: 2,
                max_retries: 5,
            },
        );
        for i in 0..20 {
            engine.execute(increment_request(t, i % 16));
        }
        let after = db.lock_stats().critical_sections;
        assert!(
            after > before + 20,
            "conventional execution must enter lock-manager critical sections"
        );
    }

    #[test]
    fn shutdown_finishes_in_flight_work() {
        let (db, t) = db_with_counter_table();
        let engine = ConvEngine::new(
            db.clone(),
            ConvEngineConfig {
                workers: 2,
                max_retries: 5,
            },
        );
        let replies: Vec<_> = (0..20)
            .map(|i| engine.submit(increment_request(t, i % 16)))
            .collect();
        engine.shutdown();
        for r in replies {
            assert!(r.recv().unwrap().is_committed());
        }
        assert_eq!(db.counters().commits, 20 + 1); // +1 for the loader txn
    }
}
