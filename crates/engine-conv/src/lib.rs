//! # dora-engine-conv
//!
//! The **conventional** OLTP execution engine used as the baseline
//! throughout the paper: work is assigned thread-to-transaction, every
//! record access goes through the centralized lock manager of the shared
//! storage substrate, and scalability is ultimately limited by the critical
//! sections executed inside that lock manager.
//!
//! The engine exposes the same "submit a transaction, get an outcome"
//! surface as the DORA engine in `dora-core`, so the workload drivers and
//! the benchmark harness can drive both systems identically — which is
//! exactly how the demo's side-by-side "Live Systems" comparison works.

#![warn(missing_docs)]

pub mod engine;
pub mod stats;

pub use engine::{ConvEngine, ConvEngineConfig, TxnBody, TxnOutcome, TxnRequest, CONV_POLICY};
pub use stats::{EngineStats, EngineStatsSnapshot, WorkerStats, WorkerStatsSnapshot};
